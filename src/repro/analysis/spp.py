"""Static-priority preemptive (SPP) response-time analysis.

The classic busy-window analysis for fixed-priority preemptive resources
(Lehoczky 1990, as used at the component level by Richter's compositional
framework and the paper's CPU1 example):

    B_i(q) = q * C_i⁺ + Σ_{j ∈ hp(i)} η⁺_j(B_i(q)) * C_j⁺
    r_i⁺   = max_q [ B_i(q) - δ⁻_i(q) ]          while δ⁻_i(q+1) < B_i(q)
    r_i⁻   = C_i⁻                                 (preemptive best case)

Equal-priority ties
-------------------
Equal-priority tasks are **conservatively counted as interference**: the
interferer set is ``{j ≠ i : priority_j <= priority_i}``, not strictly
``<``.  The tie-break order between equal priorities is unknown to the
analysis (implementation-defined dispatch, FIFO arbitration, ...), so
each of two tied tasks must assume the other may win every race; with a
strict ``<`` the analysis would certify response times that a real
tie-losing execution can exceed.  This is pinned by a regression test
(``test_spp_ties.py``), not just this comment.

When :func:`repro.analysis.kernels.active`, the per-task q-loops run
through the batched kernel driver (one joint vector fixed point per
activation round across all tasks of the resource) — bit-identical to
the scalar loop kept below as the ``REPRO_VECTOR=0`` fallback.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .. import obs as _obs
from .._errors import NotSchedulableError
from ..explain.blame import (
    KIND_BLOCKING,
    KIND_INTERFERENCE,
    KIND_OWN,
    Blame,
    BlameTerm,
    critical_activation,
)
from . import kernels
from .busy_window import fixed_point, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult


class SPPScheduler(Scheduler):
    """Static-priority preemptive analysis (smaller priority value wins)."""

    policy = "spp"

    def __init__(self, utilization_limit: float = 1.0):
        self.utilization_limit = utilization_limit

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: Optional[Dict[str, TaskResult]] = None,
                ) -> ResourceResult:
        self.check_unique_names(tasks)
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        reuse = reuse or {}
        todo = [t for t in tasks if t.name not in reuse]
        if kernels.batch_worthwhile(len(todo), util) and todo:
            computed = self._analyze_batched(todo, tasks, resource_name)
        else:
            computed = {t.name: self._analyze_task(t, tasks, resource_name)
                        for t in todo}
        results = {t.name: computed.get(t.name, reuse.get(t.name))
                   for t in tasks}
        return ResourceResult(resource_name, util, results)

    @staticmethod
    def _interferers(task: TaskSpec,
                     tasks: Sequence[TaskSpec]) -> Sequence[TaskSpec]:
        # <= not <: equal-priority ties conservatively interfere (see
        # module docstring).
        return [t for t in tasks
                if t is not task and t.priority <= task.priority]

    def influence_fingerprint(self, task, tasks):
        """SPP result for *task* depends only on tasks at the same or
        higher priority (plus the task itself), in task-set order."""
        from .memo import spec_fingerprint
        parts = [("spp", self.utilization_limit, spec_fingerprint(task))]
        for j in self._interferers(task, tasks):
            parts.append(spec_fingerprint(j))
        if any(p is None for p in parts) or parts[0][2] is None:
            return None
        return tuple(parts)

    def _analyze_batched(self, todo: Sequence[TaskSpec],
                         tasks: Sequence[TaskSpec],
                         resource_name: str) -> Dict[str, TaskResult]:
        tables = kernels.tables_for(tasks)
        chains, meta = [], []
        for task in todo:
            interferers = self._interferers(task, tasks)
            coeffs = [t.c_max if (t is not task
                                  and t.priority <= task.priority) else 0.0
                      for t in tasks]
            sum_c = sum(j.c_max for j in interferers)

            def element(q, task=task, coeffs=coeffs, sum_c=sum_c):
                base = task.blocking + q * task.c_max
                return kernels.Element(start=base + sum_c, base=base,
                                       coeffs=coeffs)

            def context(q, task=task):
                return f"{resource_name}/{task.name} SPP q={q}"

            chains.append(kernels.Chain(task.name, task.event_model,
                                        context, element=element))
            meta.append((task, interferers))
        kernels.run_chains(chains, tables, resource_name)
        out = {}
        for chain, (task, interferers) in zip(chains, meta):
            blame = None
            if _obs.enabled:
                blame = self._blame(task, interferers, resource_name,
                                    chain.r_max, chain.busy_times)
            out[task.name] = TaskResult(
                name=task.name, r_min=task.c_min, r_max=chain.r_max,
                busy_times=chain.busy_times, q_max=chain.q_max,
                details={"interferers": float(len(interferers))},
                blame=blame)
        return out

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        interferers = self._interferers(task, tasks)
        last_w = [None]

        def busy_time(q: int) -> float:
            def workload(w: float) -> float:
                demand = task.blocking + q * task.c_max
                for j in interferers:
                    demand += j.event_model.eta_plus(w) * j.c_max
                return demand

            start = task.blocking + q * task.c_max \
                + sum(j.c_max for j in interferers)
            w = fixed_point(workload, start,
                            context=f"{resource_name}/{task.name} "
                                    f"SPP q={q}",
                            resource=resource_name, task=task.name,
                            hint=last_w[0] if kernels.warm_start else None)
            last_w[0] = w
            return w

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time,
            resource=resource_name, task=task.name)
        blame = None
        if _obs.enabled:
            blame = self._blame(task, interferers, resource_name, r_max,
                                busy_times)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"interferers": float(len(interferers))},
                          blame=blame)

    @staticmethod
    def _blame(task: TaskSpec, interferers: Sequence[TaskSpec],
               resource_name: str, r_max: float,
               busy_times: Sequence[float]) -> Blame:
        """Decompose the WCRT at the critical activation.

        At the least fixed point ``B(q*) = blocking + q*·C⁺ +
        Σ η⁺_j(B(q*))·C_j⁺`` holds with equality, so re-evaluating each
        interferer's activation count at B(q*) recovers the exact
        additive split.
        """
        arrivals = [task.event_model.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        terms = [BlameTerm(j.name, KIND_INTERFERENCE,
                           contribution=j.event_model.eta_plus(bq)
                           * j.c_max,
                           activations=j.event_model.eta_plus(bq),
                           c_max=j.c_max)
                 for j in interferers]
        blocking = (BlameTerm(task.name, KIND_BLOCKING,
                              contribution=task.blocking)
                    if task.blocking else None)
        return Blame(
            task=task.name, resource=resource_name, policy="spp", q=q,
            busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            blocking=blocking, interference=terms)
