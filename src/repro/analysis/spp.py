"""Static-priority preemptive (SPP) response-time analysis.

The classic busy-window analysis for fixed-priority preemptive resources
(Lehoczky 1990, as used at the component level by Richter's compositional
framework and the paper's CPU1 example):

    B_i(q) = q * C_i⁺ + Σ_{j ∈ hp(i)} η⁺_j(B_i(q)) * C_j⁺
    r_i⁺   = max_q [ B_i(q) - δ⁻_i(q) ]          while δ⁻_i(q+1) < B_i(q)
    r_i⁻   = C_i⁻                                 (preemptive best case)

Equal-priority tasks are conservatively counted as interference (the
tie-break order is unknown to the analysis).
"""

from __future__ import annotations

from typing import Sequence

from .. import obs as _obs
from .._errors import NotSchedulableError
from ..explain.blame import (
    KIND_BLOCKING,
    KIND_INTERFERENCE,
    KIND_OWN,
    Blame,
    BlameTerm,
    critical_activation,
)
from .busy_window import fixed_point, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult


class SPPScheduler(Scheduler):
    """Static-priority preemptive analysis (smaller priority value wins)."""

    policy = "spp"

    def __init__(self, utilization_limit: float = 1.0):
        self.utilization_limit = utilization_limit

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource") -> ResourceResult:
        self.check_unique_names(tasks)
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        results = {}
        for task in tasks:
            results[task.name] = self._analyze_task(task, tasks,
                                                    resource_name)
        return ResourceResult(resource_name, util, results)

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        interferers = [t for t in tasks
                       if t is not task and t.priority <= task.priority]

        def busy_time(q: int) -> float:
            def workload(w: float) -> float:
                demand = task.blocking + q * task.c_max
                for j in interferers:
                    demand += j.event_model.eta_plus(w) * j.c_max
                return demand

            start = task.blocking + q * task.c_max \
                + sum(j.c_max for j in interferers)
            return fixed_point(workload, start,
                               context=f"{resource_name}/{task.name} "
                                       f"SPP q={q}",
                               resource=resource_name, task=task.name)

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time,
            resource=resource_name, task=task.name)
        blame = None
        if _obs.enabled:
            blame = self._blame(task, interferers, resource_name, r_max,
                                busy_times)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"interferers": float(len(interferers))},
                          blame=blame)

    @staticmethod
    def _blame(task: TaskSpec, interferers: Sequence[TaskSpec],
               resource_name: str, r_max: float,
               busy_times: Sequence[float]) -> Blame:
        """Decompose the WCRT at the critical activation.

        At the least fixed point ``B(q*) = blocking + q*·C⁺ +
        Σ η⁺_j(B(q*))·C_j⁺`` holds with equality, so re-evaluating each
        interferer's activation count at B(q*) recovers the exact
        additive split.
        """
        arrivals = [task.event_model.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        terms = [BlameTerm(j.name, KIND_INTERFERENCE,
                           contribution=j.event_model.eta_plus(bq)
                           * j.c_max,
                           activations=j.event_model.eta_plus(bq),
                           c_max=j.c_max)
                 for j in interferers]
        blocking = (BlameTerm(task.name, KIND_BLOCKING,
                              contribution=task.blocking)
                    if task.blocking else None)
        return Blame(
            task=task.name, resource=resource_name, policy="spp", q=q,
            busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            blocking=blocking, interference=terms)
