"""Fingerprint-keyed memoisation of local analyses.

The incremental re-analysis machinery rests on one observation: a local
scheduling analysis is a **pure function** of (scheduler parameters,
ordered task-spec list).  Two spec lists with equal *structural
fingerprints* — name, execution times, priority/slot/deadline/blocking,
plus the compiled-curve fingerprint of the activating event model
(:func:`repro.eventmodels.compile.fingerprint`) — produce bit-identical
:class:`~repro.analysis.results.ResourceResult`\\ s, so re-running the
solver is wasted work.  That equality argument is exact, not heuristic:
fingerprints are structural identities of the model graph, and any model
the fingerprint registry cannot canonicalise poisons the key to ``None``
(memoisation then simply disables itself — never a wrong reuse).

Two reuse granularities layer on top:

* **whole-resource** — :class:`LocalAnalysisMemo` keeps a small LRU of
  ``resource_fingerprint -> ResourceResult``; an identical re-analysis
  request (the common case in converged propagation iterations and
  adjacent sweep points) returns the stored result outright;
* **per-task** — when the resource changed, each scheduler's
  :meth:`~repro.analysis.interface.Scheduler.influence_fingerprint`
  narrows what a single task's result depends on (SPP: same-or-higher
  priorities; TDMA: own spec + cycle length; default: everything).
  Tasks whose influence cone is untouched get their previous
  ``TaskResult`` passed back to ``analyze(..., reuse=...)``, which skips
  their q-loops while still running set-wide validity checks.
"""

from __future__ import annotations

import inspect
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

from ..eventmodels import compile as _compile
from .interface import Scheduler, TaskSpec
from .results import ResourceResult


def _freeze(obj: Any) -> Any:
    """Recursively convert JSON-ish data into a hashable key."""
    if isinstance(obj, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(v) for v in obj)
    if isinstance(obj, set):
        return tuple(sorted(_freeze(v) for v in obj))
    return obj


def scheduler_key(scheduler: Scheduler) -> Optional[Tuple]:
    """Canonical key of a scheduler's analysis-relevant parameters.

    Built on the hash-stable serialisation; ``arbitration_eps`` is added
    explicitly because the wire format keeps it implicit.  Schedulers
    without a serialisation (custom subclasses) return ``None`` —
    memoisation disables itself for them.
    """
    try:
        from ..system.serialize import scheduler_to_dict
        data = scheduler_to_dict(scheduler)
    except Exception:
        return None
    return ("sched", type(scheduler).__name__, _freeze(data),
            getattr(scheduler, "arbitration_eps", None))


def spec_fingerprint(spec: TaskSpec) -> Optional[Tuple]:
    """Structural fingerprint of one task spec, or ``None`` when its
    event model cannot be fingerprinted (which disables reuse)."""
    mfp = _compile.fingerprint(spec.event_model)
    if mfp is None:
        return None
    return ("spec", spec.name, spec.c_min, spec.c_max, spec.priority,
            spec.slot, spec.deadline, spec.blocking, mfp)


def resource_fingerprint(scheduler: Scheduler,
                         specs: Sequence[TaskSpec]) -> Optional[Tuple]:
    """Fingerprint of a whole local-analysis input (order-sensitive:
    spec order affects float accumulation order, hence exact results)."""
    sk = scheduler_key(scheduler)
    if sk is None:
        return None
    parts = [sk]
    for s in specs:
        fp = spec_fingerprint(s)
        if fp is None:
            return None
        parts.append(fp)
    return tuple(parts)


def _accepts_reuse(scheduler: Scheduler) -> bool:
    try:
        return "reuse" in inspect.signature(
            type(scheduler).analyze).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


class LocalAnalysisMemo:
    """Cross-run memo for one resource's local analyses.

    Sound by construction: a whole-resource hit requires full
    fingerprint equality; a per-task reuse requires influence-cone
    fingerprint equality against the *immediately previous* successful
    run.  Failed analyses never update the memo.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._full: "OrderedDict[Tuple, ResourceResult]" = OrderedDict()
        self._last_influence: Dict[str, Tuple] = {}
        self._last_result: Optional[ResourceResult] = None
        self.resource_hits = 0
        self.task_reuses = 0
        self.tasks_total = 0
        self.analyses = 0

    def analyze(self, scheduler: Scheduler, specs: Sequence[TaskSpec],
                resource_name: str,
                ) -> Tuple[ResourceResult, Dict[str, int]]:
        """Run (or reuse) the local analysis; returns ``(result, info)``
        with ``info = {"reused_tasks": n, "computed_tasks": m,
        "resource_hit": 0|1}``."""
        self.analyses += 1
        self.tasks_total += len(specs)
        fp = resource_fingerprint(scheduler, specs)
        if fp is not None and fp in self._full:
            self._full.move_to_end(fp)
            self.resource_hits += 1
            result = self._full[fp]
            self.task_reuses += len(result.task_results)
            return result, {"reused_tasks": len(result.task_results),
                            "computed_tasks": 0, "resource_hit": 1}
        reuse: Dict[str, Any] = {}
        influence: Dict[str, Tuple] = {}
        if fp is not None:
            prev = self._last_result
            for s in specs:
                ifp = scheduler.influence_fingerprint(s, specs)
                if ifp is None:
                    continue
                influence[s.name] = ifp
                if prev is not None \
                        and self._last_influence.get(s.name) == ifp:
                    tr = prev.task_results.get(s.name)
                    if tr is not None and not tr.degraded:
                        reuse[s.name] = tr
        if reuse and _accepts_reuse(scheduler):
            result = scheduler.analyze(specs, resource_name, reuse=reuse)
        else:
            reuse = {}
            result = scheduler.analyze(specs, resource_name)
        # Only a *successful* analysis becomes the reuse baseline.
        self._last_influence = influence
        self._last_result = result
        if fp is not None:
            self._full[fp] = result
            while len(self._full) > self.max_entries:
                self._full.popitem(last=False)
        self.task_reuses += len(reuse)
        return result, {"reused_tasks": len(reuse),
                        "computed_tasks": len(specs) - len(reuse),
                        "resource_hit": 0}

    def stats(self) -> Dict[str, int]:
        return {"analyses": self.analyses,
                "resource_hits": self.resource_hits,
                "task_reuses": self.task_reuses,
                "tasks_total": self.tasks_total,
                "entries": len(self._full)}


class AnalysisMemo:
    """Cross-run dirty-set memo for the *global* compositional analysis.

    Holds one :class:`LocalAnalysisMemo` per resource.  When
    :func:`repro.system.propagation.analyze_system` runs with a memo, it
    routes every local analysis through the resource's memo — nothing
    else changes.  The global iteration therefore follows exactly the
    same trajectory as a from-scratch run (same seeds, same per-
    iteration inputs, same convergence checks), and every reused result
    is backed by fingerprint equality, so an incremental run is
    **bit-identical** to a cold one — including the ``iterations``
    count.

    What is deliberately *not* done: seeding the global iterate
    (responses or port models) from a previous run's converged state.
    The busy-window workloads shrink when a sweep edit reduces
    interference, and a fixed-point iteration started above the new
    least fixed point may converge onto a higher one — silently
    pessimistic results.  Memoising local analyses sidesteps the hazard
    entirely: the previous run seeds the *caches*, never the iterate.

    Thread safety: a memo serves one analysis run at a time.  Callers
    take :meth:`acquire` (non-blocking); when it fails — another thread
    is mid-run on the same group — the analysis simply runs without the
    memo, trading reuse for correctness-by-isolation.
    """

    def __init__(self, max_entries_per_resource: int = 64):
        self.max_entries_per_resource = max_entries_per_resource
        self._resources: Dict[str, LocalAnalysisMemo] = {}
        self._lock = threading.Lock()
        self.runs = 0

    def acquire(self) -> bool:
        """Non-blocking claim for one analysis run."""
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    def resource_memo(self, name: str) -> LocalAnalysisMemo:
        memo = self._resources.get(name)
        if memo is None:
            memo = LocalAnalysisMemo(self.max_entries_per_resource)
            self._resources[name] = memo
        return memo

    def stats(self) -> Dict[str, Any]:
        """Aggregate reuse statistics across all resources."""
        totals = {"runs": self.runs, "resources": len(self._resources),
                  "analyses": 0, "resource_hits": 0, "task_reuses": 0,
                  "tasks_total": 0}
        for memo in self._resources.values():
            s = memo.stats()
            totals["analyses"] += s["analyses"]
            totals["resource_hits"] += s["resource_hits"]
            totals["task_reuses"] += s["task_reuses"]
            totals["tasks_total"] += s["tasks_total"]
        totals["reuse_rate"] = (
            totals["task_reuses"] / totals["tasks_total"]
            if totals["tasks_total"] else 0.0)
        return totals


# ----------------------------------------------------------------------
# named memo pool (incremental batch sweeps / serve)
# ----------------------------------------------------------------------
_MEMO_POOL: "Dict[str, AnalysisMemo]" = {}
_POOL_LOCK = threading.Lock()


def memo_for(group: str) -> AnalysisMemo:
    """The process-wide :class:`AnalysisMemo` for *group*.

    Batch sweeps and the serve daemon key memos by a group name (e.g.
    the design-space name) so adjacent jobs of one sweep share reuse
    state.  Pool workers each hold their own pool — reuse then happens
    within a worker, which is exactly as sound and nearly as effective
    for sorted sweeps.
    """
    with _POOL_LOCK:
        memo = _MEMO_POOL.get(group)
        if memo is None:
            memo = AnalysisMemo()
            _MEMO_POOL[group] = memo
        return memo


def memo_pool_stats() -> "Dict[str, Dict[str, Any]]":
    """Snapshot of every named memo's aggregate statistics."""
    with _POOL_LOCK:
        groups = dict(_MEMO_POOL)
    return {name: memo.stats() for name, memo in groups.items()}


__all__ = [
    "AnalysisMemo",
    "LocalAnalysisMemo",
    "memo_for",
    "memo_pool_stats",
    "resource_fingerprint",
    "scheduler_key",
    "spec_fingerprint",
]
