"""Shared busy-window machinery (Lehoczky's technique).

All fixed-priority analyses follow the same skeleton:

1. For activation counts q = 1, 2, ... compute the *q-event busy time*
   B(q): the least fixed point of a workload function ``W(q, w)``.
2. The q-th response time is ``B(q) - δ⁻(q)`` (the q-th activation arrives
   no earlier than δ⁻(q) after the window opens).
3. Stop once the busy window closes: the (q+1)-th activation arrives only
   after the q-event window has drained.

This module provides the fixed-point solver and the q-loop driver; the
per-policy workload functions live in :mod:`spp`, :mod:`spnp`, etc.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from .. import obs as _obs
from .._errors import NotSchedulableError
from ..timebase import EPS, time_eq
from ..eventmodels.base import EventModel

#: Hard cap on fixed-point iterations for a single busy time.
MAX_FIXED_POINT_ITER = 100_000

#: Hard cap on the number of activations examined in one busy window.
MAX_ACTIVATIONS = 50_000

#: Busy times beyond this multiple of the total WCET budget of the task set
#: indicate an overload that the utilisation pre-check missed.
_WINDOW_BLOWUP = 1e12


def fixed_point(workload: Callable[[float], float], start: float,
                limit: float = _WINDOW_BLOWUP,
                context: str = "busy window",
                resource: str = None, task: str = None,
                hint: float = None) -> float:
    """Least fixed point of a monotone workload function.

    Iterates ``w <- workload(w)`` from ``start`` until the value is stable
    (within :data:`~repro.timebase.EPS`) or exceeds *limit*, in which case
    the window never closes and :class:`NotSchedulableError` is raised.

    ``hint`` warm-starts the iteration from ``max(start, hint)``: a
    caller holding a known lower bound on the least fixed point (e.g.
    the converged (q-1)-event window, since the workload is pointwise
    non-decreasing in q) skips the climb back up.  The hint is *guarded*:
    if the first evaluation decreases, the hint overshot (it was stale,
    not a lower bound) and the iteration restarts from the cold *start*
    — so a bad hint costs one evaluation instead of soundness.  Because
    the iterates then climb the same monotone staircase the cold start
    would, the returned fixed point is identical whenever workload
    plateau steps exceed :data:`~repro.timebase.EPS` (always true for
    real task sets: steps are multiples of some C⁺ ≫ 1e-9).

    ``resource`` / ``task`` attach structured attribution to any raised
    :class:`NotSchedulableError` (used by degraded-mode quarantine
    reports); ``context`` stays the human-readable prefix.
    """
    w = start
    guarded = False
    if hint is not None and hint > start:
        w = hint
        guarded = True
    for step in range(1, MAX_FIXED_POINT_ITER + 1):
        w_next = workload(w)
        if w_next < w - EPS:
            if guarded:
                # Stale warm-start hint overshot the fixed point:
                # restart from the cold start.
                w = start
                guarded = False
                continue
            # A monotone workload never shrinks along the iteration; a
            # decrease signals a non-monotone workload function (bug in
            # the caller), not an analysis result.
            raise NotSchedulableError(
                f"{context}: workload function not monotone "
                f"({w_next} < {w})", resource=resource, task=task,
                context={"reason": "non_monotone_workload"})
        guarded = False
        if time_eq(w_next, w):
            if _obs.enabled:
                registry = _obs.metrics()
                registry.counter("busy_window.fixed_point_calls").inc()
                registry.histogram(
                    "busy_window.fixed_point_iterations").observe(step)
            return w_next
        if w_next > limit:
            raise NotSchedulableError(
                f"{context}: busy window exceeds {limit}; resource "
                f"overloaded", resource=resource, task=task,
                context={"reason": "busy_window_blowup",
                         "window": w_next, "limit": limit})
        w = w_next
    raise NotSchedulableError(
        f"{context}: no fixed point within {MAX_FIXED_POINT_ITER} "
        f"iterations", resource=resource, task=task,
        context={"reason": "fixed_point_budget",
                 "iterations": MAX_FIXED_POINT_ITER})


def multi_activation_loop(
        event_model: EventModel,
        busy_time: Callable[[int], float],
        window_closes: Callable[[int, float], bool] = None,
        resource: str = None, task: str = None,
) -> Tuple[float, List[float], int]:
    """Drive the q-activation loop of a busy-window analysis.

    Parameters
    ----------
    event_model:
        The analysed task's activating event model (supplies δ⁻).
    busy_time:
        ``busy_time(q)`` returns the q-event busy time B(q).
    window_closes:
        Predicate ``(q, B(q)) -> bool``; default closes when the next
        activation arrives no earlier than the q-event window ends,
        i.e. ``δ⁻(q + 1) >= B(q)``.

    Returns
    -------
    (r_max, busy_times, q_max):
        Worst-case response across activations, the list of busy times,
        and the number of activations examined.
    """
    if window_closes is None:
        def window_closes(q, bq):
            return event_model.delta_min(q + 1) >= bq - EPS

    r_max = 0.0
    busy_times: List[float] = []
    q = 1
    while True:
        bq = busy_time(q)
        busy_times.append(bq)
        response = bq - event_model.delta_min(q)
        if response > r_max:
            r_max = response
        if window_closes(q, bq):
            break
        q += 1
        if q > MAX_ACTIVATIONS:
            raise NotSchedulableError(
                f"busy window did not close within {MAX_ACTIVATIONS} "
                f"activations", resource=resource, task=task,
                context={"reason": "activation_budget",
                         "activations": MAX_ACTIVATIONS})
    if _obs.enabled:
        registry = _obs.metrics()
        registry.counter("busy_window.windows").inc()
        registry.histogram("busy_window.activations").observe(q)
    return r_max, busy_times, q
