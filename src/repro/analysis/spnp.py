"""Static-priority non-preemptive (SPNP) analysis — the CAN bus model.

CAN arbitration is priority-based (lower identifier wins) but a frame that
has won the bus transmits to completion.  The busy-window analysis is the
classic one (Tindell/Davis CAN analysis recast in CPA terms):

    blocking  B_i = max_{j ∈ lp(i)} C_j⁺        (a lower-priority frame
                                                 already on the wire)
    queuing   w_i(q):  w = B_i + (q - 1) * C_i⁺
                           + Σ_{j ∈ hp(i)} η⁺_j(w + ε) * C_j⁺
    busy time B_i(q) = w_i(q) + C_i⁺
    response  r_i⁺   = max_q [ B_i(q) + ... - δ⁻_i(q) ]

The ``+ ε`` counts a higher-priority frame arriving exactly when
arbitration starts — it still wins the bus.  The window-close condition
uses the *full* busy time (queuing + own transmission) because the q+1-th
own frame keeps the priority-level busy period open while any earlier own
frame occupies the bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError, NotSchedulableError
from ..explain.blame import (
    KIND_BLOCKING,
    KIND_ERRORS,
    KIND_INTERFERENCE,
    KIND_OWN,
    Blame,
    BlameTerm,
    critical_activation,
)
from ..timebase import EPS
from . import kernels
from .busy_window import fixed_point, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult

#: Arbitration tie epsilon: arrivals exactly at the arbitration instant
#: still participate.  Any positive value below the time resolution works.
ARBITRATION_EPS = 1e-6


@dataclass(frozen=True)
class CanErrorModel:
    """Fault model for CAN error frames and retransmissions (Tindell /
    Davis style).

    Every bus error costs up to an error frame (≤ 31 bit times) plus the
    retransmission of the interrupted frame.  The overhead admitted into
    a window of length ``w`` is::

        E(w) = (burst_errors + ceil(w * error_rate)) * recovery_time

    Attributes
    ----------
    burst_errors:
        Errors assumed to strike right at the critical instant.
    error_rate:
        Sustained error rate (errors per time unit) thereafter.
    recovery_time:
        Worst-case cost of one error: error frame + retransmission of
        the largest affected frame (caller computes it from the bus
        timing; see :meth:`recovery_time_for`).
    """

    burst_errors: int = 0
    error_rate: float = 0.0
    recovery_time: float = 0.0

    def __post_init__(self):
        if self.burst_errors < 0 or self.error_rate < 0 \
                or self.recovery_time < 0:
            raise ModelError("error-model parameters must be >= 0")

    def overhead(self, window: float) -> float:
        """Worst-case error overhead in a window of length *window*."""
        if window <= 0:
            return self.burst_errors * self.recovery_time
        count = self.burst_errors + math.ceil(window * self.error_rate)
        return count * self.recovery_time

    @staticmethod
    def recovery_time_for(bit_time: float,
                          max_frame_bits: int) -> float:
        """Per-error cost: 31-bit error frame + full retransmission."""
        return (31 + max_frame_bits) * bit_time


class SPNPScheduler(Scheduler):
    """Static-priority non-preemptive analysis (CAN-style arbitration)."""

    policy = "spnp"

    def __init__(self, utilization_limit: float = 1.0,
                 arbitration_eps: float = ARBITRATION_EPS,
                 error_model: Optional[CanErrorModel] = None):
        self.utilization_limit = utilization_limit
        self.arbitration_eps = arbitration_eps
        self.error_model = error_model

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: Optional[dict] = None) -> ResourceResult:
        self.check_unique_names(tasks)
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        reuse = reuse or {}
        todo = [t for t in tasks if t.name not in reuse]
        if kernels.batch_worthwhile(len(todo), util) and todo:
            computed = self._analyze_batched(todo, tasks, resource_name)
        else:
            computed = {t.name: self._analyze_task(t, tasks, resource_name)
                        for t in todo}
        results = {t.name: computed.get(t.name, reuse.get(t.name))
                   for t in tasks}
        return ResourceResult(resource_name, util, results)

    def influence_fingerprint(self, task, tasks):
        """An SPNP result depends on the task itself, same-or-higher
        priorities (in order), the largest lower-priority C⁺ (the
        blocking term), and the arbitration/error parameters."""
        from .memo import spec_fingerprint
        own = spec_fingerprint(task)
        if own is None:
            return None
        parts = [("spnp", self.utilization_limit, self.arbitration_eps,
                  None if self.error_model is None else
                  (self.error_model.burst_errors,
                   self.error_model.error_rate,
                   self.error_model.recovery_time),
                  max((t.c_max for t in tasks
                       if t.priority > task.priority), default=0.0),
                  own)]
        for j in tasks:
            if j is not task and j.priority <= task.priority:
                fp = spec_fingerprint(j)
                if fp is None:
                    return None
                parts.append(fp)
        return tuple(parts)

    def _blocking(self, task: TaskSpec,
                  tasks: Sequence[TaskSpec]) -> float:
        lower = [t for t in tasks if t.priority > task.priority]
        return max((t.c_max for t in lower), default=0.0) + task.blocking

    def _analyze_batched(self, todo: Sequence[TaskSpec],
                         tasks: Sequence[TaskSpec],
                         resource_name: str) -> dict:
        tables = kernels.tables_for(tasks)
        tail = (kernels.TailSpec(self.error_model)
                if self.error_model is not None else None)
        chains, meta = [], []
        for task in todo:
            higher = [t for t in tasks
                      if t is not task and t.priority <= task.priority]
            blocking = self._blocking(task, tasks)
            coeffs = [t.c_max if (t is not task
                                  and t.priority <= task.priority) else 0.0
                      for t in tasks]
            sum_c = sum(j.c_max for j in higher)

            def element(q, task=task, coeffs=coeffs, sum_c=sum_c,
                        blocking=blocking):
                base = blocking + (q - 1) * task.c_max
                return kernels.Element(start=base + sum_c, base=base,
                                       coeffs=coeffs, cmax=task.c_max)

            def context(q, task=task):
                return f"{resource_name}/{task.name} SPNP q={q}"

            def busy(q, w, task=task):
                return w + task.c_max

            chains.append(kernels.Chain(task.name, task.event_model,
                                        context, element=element,
                                        busy=busy))
            meta.append((task, higher, blocking))
        kernels.run_chains(chains, tables, resource_name,
                           shift=self.arbitration_eps, tail=tail)
        out = {}
        for chain, (task, higher, blocking) in zip(chains, meta):
            blame = None
            if _obs.enabled:
                blame = self._blame(task, higher, resource_name, blocking,
                                    chain.r_max, chain.busy_times)
            out[task.name] = TaskResult(
                name=task.name, r_min=task.c_min, r_max=chain.r_max,
                busy_times=chain.busy_times, q_max=chain.q_max,
                details={"blocking": blocking}, blame=blame)
        return out

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        higher = [t for t in tasks
                  if t is not task and t.priority <= task.priority]
        blocking = self._blocking(task, tasks)
        eps = self.arbitration_eps

        error_model = self.error_model
        last_w = [None]

        def busy_time(q: int) -> float:
            def queuing(w: float) -> float:
                demand = blocking + (q - 1) * task.c_max
                for j in higher:
                    demand += j.event_model.eta_plus(w + eps) * j.c_max
                if error_model is not None:
                    demand += error_model.overhead(w + task.c_max)
                return demand

            start = blocking + (q - 1) * task.c_max \
                + sum(j.c_max for j in higher)
            w = fixed_point(queuing, start,
                            context=f"{resource_name}/{task.name} "
                                    f"SPNP q={q}",
                            resource=resource_name, task=task.name,
                            hint=last_w[0] if kernels.warm_start else None)
            last_w[0] = w
            return w + task.c_max

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time,
            resource=resource_name, task=task.name)
        blame = None
        if _obs.enabled:
            blame = self._blame(task, higher, resource_name, blocking,
                                r_max, busy_times)
        # Best case: the frame finds the bus idle and just transmits.
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"blocking": blocking}, blame=blame)

    def _blame(self, task: TaskSpec, higher: Sequence[TaskSpec],
               resource_name: str, blocking: float, r_max: float,
               busy_times: Sequence[float]) -> Blame:
        """Decompose the WCRT at the critical activation.

        ``B(q*) = w + C⁺`` with ``w = blocking + (q*-1)·C⁺ +
        Σ η⁺_j(w+ε)·C_j⁺ + E(w + C⁺)`` exact at the fixed point; the own
        term folds the queued predecessors and the final transmission
        into q*·C⁺.
        """
        arrivals = [task.event_model.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        w = bq - task.c_max
        eps = self.arbitration_eps
        terms = [BlameTerm(j.name, KIND_INTERFERENCE,
                           contribution=j.event_model.eta_plus(w + eps)
                           * j.c_max,
                           activations=j.event_model.eta_plus(w + eps),
                           c_max=j.c_max)
                 for j in higher]
        extras = []
        if self.error_model is not None:
            extras.append(BlameTerm(
                "can.errors", KIND_ERRORS,
                contribution=self.error_model.overhead(w + task.c_max)))
        blocking_term = (BlameTerm(task.name, KIND_BLOCKING,
                                   contribution=blocking,
                                   note="lower-priority frame on the wire")
                         if blocking else None)
        return Blame(
            task=task.name, resource=resource_name, policy="spnp", q=q,
            busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            blocking=blocking_term, interference=terms, extras=extras)
