"""Local scheduling analyses (busy-window technique and friends)."""

from .backlog import backlog_bound, buffer_bound
from .busy_window import fixed_point, multi_activation_loop
from .edf import EDFScheduler, edf_demand_schedulable, synchronous_busy_period
from .interface import Scheduler, TaskSpec
from .resource_model import (
    BoundedDelayResource,
    HierarchicalSPPScheduler,
    PeriodicResource,
)
from .results import ResourceResult, SystemResult, TaskResult
from .round_robin import RoundRobinScheduler
from .sensitivity import (
    binary_search_max,
    max_wcet_scaling,
    min_period_scaling,
    task_wcet_slack,
)
from .spnp import CanErrorModel, SPNPScheduler
from .spp import SPPScheduler
from .tdma import TDMAScheduler, tdma_supply, tdma_supply_inverse

__all__ = [
    "TaskSpec",
    "Scheduler",
    "TaskResult",
    "ResourceResult",
    "SystemResult",
    "fixed_point",
    "multi_activation_loop",
    "SPPScheduler",
    "SPNPScheduler",
    "CanErrorModel",
    "RoundRobinScheduler",
    "TDMAScheduler",
    "tdma_supply",
    "tdma_supply_inverse",
    "EDFScheduler",
    "edf_demand_schedulable",
    "synchronous_busy_period",
    "PeriodicResource",
    "BoundedDelayResource",
    "HierarchicalSPPScheduler",
    "binary_search_max",
    "max_wcet_scaling",
    "task_wcet_slack",
    "min_period_scaling",
    "backlog_bound",
    "buffer_bound",
]
