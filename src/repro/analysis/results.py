"""Result containers for local and global analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..explain.blame import Blame


@dataclass
class TaskResult:
    """Outcome of a local scheduling analysis for one task.

    Attributes
    ----------
    name:
        Task name.
    r_min:
        Best-case (minimum) response time r⁻.
    r_max:
        Worst-case (maximum) response time r⁺.
    busy_times:
        ``busy_times[q - 1]`` is the q-event busy time B(q) examined by
        the busy-window analysis (empty for analyses that do not use busy
        windows).
    q_max:
        Number of activations examined before the busy window closed.
    details:
        Analysis-specific diagnostics (e.g. blocking term for SPNP).
    blame:
        WCRT decomposition at the critical activation
        (:class:`repro.explain.blame.Blame`); populated by the solvers
        only while ``repro.obs.enabled`` is on, ``None`` otherwise.
    degraded:
        True when this result was produced (or substituted) by the
        degraded-analysis path of :mod:`repro.resilience` rather than a
        clean local analysis; the bounds are then conservative
        over-approximations, not tight CPA results.
    """

    name: str
    r_min: float
    r_max: float
    busy_times: List[float] = field(default_factory=list)
    q_max: int = 0
    details: Dict[str, float] = field(default_factory=dict)
    blame: "Optional[Blame]" = None
    degraded: bool = False

    @property
    def response_jitter(self) -> float:
        """r⁺ - r⁻: the jitter this task adds to its output stream."""
        return self.r_max - self.r_min


@dataclass
class ResourceResult:
    """Results of one local analysis run over a whole resource.

    ``health`` is ``"ok"`` for a clean analysis; the degraded-analysis
    path of :mod:`repro.resilience` marks failed resources
    ``"overloaded"``, ``"diverged"``, or ``"quarantined"`` instead.
    """

    resource: str
    utilization: float
    task_results: Dict[str, TaskResult]
    health: str = "ok"

    def __getitem__(self, task_name: str) -> TaskResult:
        return self.task_results[task_name]

    def wcrt(self, task_name: str) -> float:
        return self.task_results[task_name].r_max


@dataclass
class SystemResult:
    """Converged outcome of the global compositional iteration."""

    iterations: int
    converged: bool
    resource_results: Dict[str, ResourceResult]
    path_latencies: Dict[str, float] = field(default_factory=dict)

    def wcrt(self, task_name: str) -> Optional[float]:
        """Worst-case response time of a task, searched across resources."""
        for rr in self.resource_results.values():
            if task_name in rr.task_results:
                return rr.task_results[task_name].r_max
        return None

    def task_result(self, task_name: str) -> Optional[TaskResult]:
        for rr in self.resource_results.values():
            if task_name in rr.task_results:
                return rr.task_results[task_name]
        return None
