"""TDMA response-time analysis via supply functions.

Each task owns a dedicated slot of length θ_i in a TDMA cycle of length
``c = Σ_j θ_j``.  The worst case aligns an activation just after the own
slot ended, giving the standard supply bound

    sbf_i(Δt) = k * θ_i + max(0, Δt' - k * c)      Δt' = Δt - (c - θ_i),
                                                   k = floor(Δt' / c)

The q-event busy time is the pseudo-inverse evaluated at the demand
``q * C_i⁺`` (no other task interferes beyond taking its own slots):

    B_i(q) = (c - θ_i) + floor' * c + rem           where
    floor' = ceil(D / θ_i) - 1, rem = D - floor' * θ_i, D = q * C_i⁺
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError, NotSchedulableError
from ..explain.blame import (
    KIND_OWN,
    KIND_SUPPLY,
    Blame,
    BlameTerm,
    critical_activation,
)
from ..timebase import EPS
from . import kernels
from .busy_window import multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult


def tdma_supply(dt: float, slot: float, cycle: float) -> float:
    """Worst-case TDMA service available in a window of length ``dt``."""
    if dt <= 0:
        return 0.0
    shifted = dt - (cycle - slot)
    if shifted <= 0:
        return 0.0
    k = math.floor(shifted / cycle)
    return k * slot + max(0.0, min(slot, shifted - k * cycle))


def tdma_supply_inverse(demand: float, slot: float, cycle: float) -> float:
    """Smallest window guaranteeing ``demand`` units of TDMA service."""
    if demand <= 0:
        return 0.0
    full = math.ceil(demand / slot - EPS) - 1
    rem = demand - full * slot
    return (cycle - slot) + full * cycle + rem


class TDMAScheduler(Scheduler):
    """TDMA analysis; every task needs a positive ``slot``."""

    policy = "tdma"

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: Optional[dict] = None) -> ResourceResult:
        self.check_unique_names(tasks)
        for t in tasks:
            if t.slot is None or t.slot <= 0:
                raise ModelError(f"TDMA task {t.name} needs a positive slot")
        cycle = sum(t.slot for t in tasks)
        util = self.total_load(tasks)
        reuse = reuse or {}
        todo = []
        for task in tasks:
            # Per-task capacity check: the own slot share must cover the
            # own long-run demand.
            share = task.slot / cycle
            load = task.load()
            if load > share + 1e-9:
                raise NotSchedulableError(
                    f"{resource_name}/{task.name}: demand {load:.4f} "
                    f"exceeds TDMA share {share:.4f}",
                    resource=resource_name, utilization=load / share)
            if task.name not in reuse:
                todo.append(task)
        if kernels.batch_worthwhile(len(todo), util) and todo:
            computed = self._analyze_batched(todo, cycle, resource_name)
        else:
            computed = {t.name: self._analyze_task(t, cycle, resource_name)
                        for t in todo}
        results = {t.name: computed.get(t.name, reuse.get(t.name))
                   for t in tasks}
        return ResourceResult(resource_name, util, results)

    def influence_fingerprint(self, task, tasks):
        """A TDMA result depends only on the task itself and the cycle
        length (the sum of all slots) — not on other tasks' streams."""
        from .memo import spec_fingerprint
        own = spec_fingerprint(task)
        if own is None:
            return None
        return ("tdma", sum(t.slot for t in tasks), own)

    def _analyze_batched(self, todo: Sequence[TaskSpec], cycle: float,
                         resource_name: str) -> dict:
        chains, meta = [], []
        for task in todo:
            def direct(q, task=task):
                return tdma_supply_inverse(q * task.c_max, task.slot,
                                           cycle)

            def context(q, task=task):
                return f"{resource_name}/{task.name} TDMA q={q}"

            chains.append(kernels.Chain(task.name, task.event_model,
                                        context, direct=direct))
            meta.append(task)
        kernels.run_chains(chains, [], resource_name)
        out = {}
        for chain, task in zip(chains, meta):
            out[task.name] = self._task_result(task, cycle, resource_name,
                                               chain.r_max,
                                               chain.busy_times,
                                               chain.q_max)
        return out

    def _analyze_task(self, task: TaskSpec, cycle: float,
                      resource_name: str) -> TaskResult:
        def busy_time(q: int) -> float:
            return tdma_supply_inverse(q * task.c_max, task.slot, cycle)

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time,
            resource=resource_name, task=task.name)
        return self._task_result(task, cycle, resource_name, r_max,
                                 busy_times, q_max)

    def _task_result(self, task: TaskSpec, cycle: float,
                     resource_name: str, r_max: float,
                     busy_times: "list[float]", q_max: int) -> TaskResult:
        blame = None
        if _obs.enabled:
            blame = self._blame(task, cycle, resource_name, r_max,
                                busy_times)
        # Best case: activation at the start of the own slot, execution
        # fits into consecutive slots without waiting.
        own_slots = math.ceil(task.c_min / task.slot - EPS) - 1
        r_min = task.c_min + own_slots * (cycle - task.slot)
        r_min = max(task.c_min, min(r_min, r_max))
        return TaskResult(name=task.name, r_min=r_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"cycle": cycle}, blame=blame)

    @staticmethod
    def _blame(task: TaskSpec, cycle: float, resource_name: str,
               r_max: float, busy_times: Sequence[float]) -> Blame:
        """Decompose the WCRT: in TDMA no other task's arrivals matter —
        everything beyond the own demand is waiting for the own slot, a
        single ``supply`` term charged to the cycle."""
        arrivals = [task.event_model.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        wait = bq - q * task.c_max
        extras = []
        if wait > 0:
            extras.append(BlameTerm(
                "tdma.cycle", KIND_SUPPLY, contribution=wait,
                note=f"foreign slots: cycle {cycle:g}, own slot "
                     f"{task.slot:g}"))
        return Blame(
            task=task.name, resource=resource_name, policy="tdma", q=q,
            busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            extras=extras, candidate={"cycle": cycle})
