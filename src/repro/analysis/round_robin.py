"""Round-robin response-time analysis.

Each task owns a slot (quantum) of length ``slot``; the scheduler cycles
through all tasks, skipping empty queues.  The interference any other task
j can impose while task i completes q activations is bounded both by j's
own arrivals and by the number of rounds i needs:

    rounds_i(q)      = ceil(q * C_i⁺ / θ_i)
    I_j(w, q)        = min( η⁺_j(w) * C_j⁺ , rounds_i(q) * θ_j )
    B_i(q): w        = q * C_i⁺ + Σ_{j ≠ i} I_j(w, q)

(Richter's thesis, ch. 4 — the min captures that a queue can only use its
slot when it actually holds work.)
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError, NotSchedulableError
from ..explain.blame import (
    KIND_INTERFERENCE,
    KIND_OWN,
    Blame,
    BlameTerm,
    critical_activation,
)
from . import kernels
from .busy_window import fixed_point, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult


class RoundRobinScheduler(Scheduler):
    """Round-robin analysis; every task needs a positive ``slot``."""

    policy = "round_robin"

    def __init__(self, utilization_limit: float = 1.0):
        self.utilization_limit = utilization_limit

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: Optional[dict] = None) -> ResourceResult:
        self.check_unique_names(tasks)
        for t in tasks:
            if t.slot is None or t.slot <= 0:
                raise ModelError(
                    f"round-robin task {t.name} needs a positive slot")
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        reuse = reuse or {}
        todo = [t for t in tasks if t.name not in reuse]
        if kernels.batch_worthwhile(len(todo), util) and todo:
            computed = self._analyze_batched(todo, tasks, resource_name)
        else:
            computed = {t.name: self._analyze_task(t, tasks, resource_name)
                        for t in todo}
        results = {t.name: computed.get(t.name, reuse.get(t.name))
                   for t in tasks}
        return ResourceResult(resource_name, util, results)

    def _analyze_batched(self, todo: Sequence[TaskSpec],
                         tasks: Sequence[TaskSpec],
                         resource_name: str) -> dict:
        tables = kernels.tables_for(tasks)
        chains, meta = [], []
        for task in todo:
            others = [t for t in tasks if t is not task]
            coeffs = [0.0 if t is task else t.c_max for t in tasks]

            def element(q, task=task, coeffs=coeffs):
                rounds = math.ceil(q * task.c_max / task.slot)
                pcaps = [None if t is task else rounds * t.slot
                         for t in tasks]
                return kernels.Element(start=q * task.c_max,
                                       base=q * task.c_max,
                                       coeffs=coeffs,
                                       product_caps=pcaps)

            def context(q, task=task):
                return f"{resource_name}/{task.name} RR q={q}"

            chains.append(kernels.Chain(task.name, task.event_model,
                                        context, element=element))
            meta.append((task, others))
        kernels.run_chains(chains, tables, resource_name)
        out = {}
        for chain, (task, others) in zip(chains, meta):
            blame = None
            if _obs.enabled:
                blame = self._blame(task, others, resource_name,
                                    chain.r_max, chain.busy_times)
            out[task.name] = TaskResult(
                name=task.name, r_min=task.c_min, r_max=chain.r_max,
                busy_times=chain.busy_times, q_max=chain.q_max,
                blame=blame)
        return out

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        others = [t for t in tasks if t is not task]
        last_w = [None]

        def busy_time(q: int) -> float:
            rounds = math.ceil(q * task.c_max / task.slot)

            def workload(w: float) -> float:
                demand = q * task.c_max
                for j in others:
                    arrival_bound = j.event_model.eta_plus(w) * j.c_max
                    slot_bound = rounds * j.slot
                    demand += min(arrival_bound, slot_bound)
                return demand

            w = fixed_point(workload, q * task.c_max,
                            context=f"{resource_name}/{task.name} "
                                    f"RR q={q}",
                            resource=resource_name, task=task.name,
                            hint=last_w[0] if kernels.warm_start else None)
            last_w[0] = w
            return w

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time,
            resource=resource_name, task=task.name)
        blame = None
        if _obs.enabled:
            blame = self._blame(task, others, resource_name, r_max,
                                busy_times)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max, blame=blame)

    @staticmethod
    def _blame(task: TaskSpec, others: Sequence[TaskSpec],
               resource_name: str, r_max: float,
               busy_times: Sequence[float]) -> Blame:
        """Decompose the WCRT at the critical activation; interference
        capped by the round count is marked ``slot-capped``."""
        arrivals = [task.event_model.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        rounds = math.ceil(q * task.c_max / task.slot)
        terms = []
        for j in others:
            n = j.event_model.eta_plus(bq)
            arrival_bound = n * j.c_max
            slot_bound = rounds * j.slot
            capped = slot_bound < arrival_bound
            terms.append(BlameTerm(
                j.name, KIND_INTERFERENCE,
                contribution=min(arrival_bound, slot_bound),
                activations=n, c_max=j.c_max,
                note=(f"slot-capped at {rounds} rounds x {j.slot:g}"
                      if capped else "")))
        return Blame(
            task=task.name, resource=resource_name, policy="round_robin",
            q=q, busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            interference=terms, candidate={"rounds": rounds})
