"""Earliest-deadline-first (EDF) analysis.

Two entry points:

* :func:`edf_demand_schedulable` — the processor-demand criterion over the
  synchronous busy period: ``Σ_i dbf_i(t) <= t`` for every testing point,
  where ``dbf_i(t) = η⁺_i(t - D_i + ε) * C_i⁺`` counts jobs whose arrival
  *and* deadline fall inside ``[0, t]``.

* :class:`EDFScheduler` — conservative response-time bounds in the style
  of Spuri's deadline-busy-period analysis.  Unlike fixed priorities,
  EDF has no synchronous critical instant: the worst case for task i can
  have the interfering tasks released *before* i, so that their absolute
  deadlines land at or just before i's.  The analysis therefore examines
  a set of candidate offsets ``a`` of task i's first job into a busy
  window that opens with all other tasks released synchronously:

      a ∈ {0} ∪ {δ⁻_j(k) + D_j - D_i : j ≠ i, k >= 1, 0 < a < L}

  (L = synchronous busy period of the whole task set; the candidates
  align i's deadline with each interferer deadline, which is where the
  interference bound below jumps).  For the q-th job of task i at offset
  ``a`` (arrival a + δ⁻_i(q), absolute deadline d = a + δ⁻_i(q) + D_i),
  only jobs of j with deadlines at or before d interfere:

      n_j(d) = η⁺_j(d - D_j + ε)
      B_i(a, q): w = q * C_i⁺ + Σ_{j ≠ i} min(η⁺_j(w), n_j(d)) * C_j⁺
      r_i = max over a, q of max(B_i(a, q) - a - δ⁻_i(q), C_i⁺)

  Every (a, q) bound is individually conservative (η⁺ is phase
  independent), and the candidate sweep covers the deadline alignments
  where the true worst case occurs, so the maximum upper-bounds the
  exact worst-case response time.  Ties in absolute deadline are counted
  as interference (the ``+ ε``), which also covers FIFO tie-breaking.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError, NotSchedulableError
from ..explain.blame import (
    KIND_INTERFERENCE,
    KIND_OWN,
    Blame,
    BlameTerm,
    critical_activation,
)
from ..timebase import EPS
from . import kernels
from .busy_window import MAX_ACTIVATIONS, fixed_point, \
    multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult

_DEADLINE_EPS = 1e-6


def synchronous_busy_period(tasks: Sequence[TaskSpec],
                            resource: str = None) -> float:
    """Length of the longest processor busy period after a synchronous
    release (all streams fire together at t = 0)."""

    def workload(w: float) -> float:
        return sum(t.event_model.eta_plus(w) * t.c_max for t in tasks)

    start = sum(t.c_max for t in tasks)
    return fixed_point(workload, start, context="EDF busy period",
                       resource=resource)


def edf_demand_schedulable(tasks: Sequence[TaskSpec]) -> bool:
    """Processor-demand schedulability test for EDF.

    Tests every absolute deadline inside the synchronous busy period.
    Requires every task to carry a relative ``deadline``.
    """
    for t in tasks:
        if t.deadline is None or t.deadline <= 0:
            raise ModelError(f"EDF task {t.name} needs a positive deadline")
    horizon = synchronous_busy_period(tasks)
    # Testing points: every absolute deadline of every task within the
    # busy period.
    points = set()
    for t in tasks:
        k = 1
        while True:
            d = t.event_model.delta_min(k) + t.deadline
            if d > horizon + EPS:
                break
            points.add(d)
            k += 1
            if k > 100_000:
                break
    for point in sorted(points):
        demand = 0.0
        for t in tasks:
            jobs = t.event_model.eta_plus(point - t.deadline + _DEADLINE_EPS)
            demand += jobs * t.c_max
        if demand > point + EPS:
            return False
    return True


class EDFScheduler(Scheduler):
    """Deadline-based conservative EDF response-time analysis."""

    policy = "edf"

    def __init__(self, utilization_limit: float = 1.0):
        self.utilization_limit = utilization_limit

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: Optional[dict] = None) -> ResourceResult:
        self.check_unique_names(tasks)
        for t in tasks:
            if t.deadline is None or t.deadline <= 0:
                raise ModelError(
                    f"EDF task {t.name} needs a positive deadline")
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        reuse = reuse or {}
        todo = [t for t in tasks if t.name not in reuse]
        computed = {}
        if todo:
            horizon = synchronous_busy_period(tasks,
                                              resource=resource_name)
            if kernels.batch_worthwhile(len(todo) * len(tasks), util):
                computed = self._analyze_batched(todo, tasks,
                                                 resource_name, horizon)
            else:
                computed = {t.name: self._analyze_task(t, tasks,
                                                       resource_name,
                                                       horizon)
                            for t in todo}
        results = {t.name: computed.get(t.name, reuse.get(t.name))
                   for t in tasks}
        return ResourceResult(resource_name, util, results)

    @staticmethod
    def _candidate_offsets(task: TaskSpec, others: Sequence[TaskSpec],
                           horizon: float) -> "list[float]":
        """Offsets of task i's first job into the busy window at which
        its absolute deadline aligns with an interferer's deadline (the
        jump points of the deadline-limited interference bound)."""
        offsets = {0.0}
        for j in others:
            for k in range(1, MAX_ACTIVATIONS + 1):
                a = j.event_model.delta_min(k) + j.deadline \
                    - task.deadline
                if a >= horizon - EPS:
                    break  # δ⁻ is non-decreasing, so a only grows
                if a > EPS:
                    offsets.add(a)
        return sorted(offsets)

    def _analyze_batched(self, todo: Sequence[TaskSpec],
                         tasks: Sequence[TaskSpec], resource_name: str,
                         horizon: float) -> dict:
        """All (task, candidate-offset) q-loops of the resource as one
        joint chain set: every candidate is an independent busy-window
        chain whose deadline caps are per-(q, offset) count caps."""
        tables = kernels.tables_for(tasks)
        out = {}
        chains, meta = [], []
        for task in todo:
            others = [t for t in tasks if t is not task]
            em = task.event_model
            candidates = self._candidate_offsets(task, others, horizon)
            # q-independent, so one list per task: the kernel caches the
            # numpy coefficient row per list identity across rounds.
            coeffs = [0.0 if j is task else j.c_max for j in tasks]
            task_chains = []
            for a in candidates:
                def element(q, task=task, a=a, em=em, coeffs=coeffs):
                    abs_deadline = a + em.delta_min(q) + task.deadline
                    ccaps = [None if j is task
                             else j.event_model.eta_plus(
                                 abs_deadline - j.deadline + _DEADLINE_EPS)
                             for j in tasks]
                    return kernels.Element(start=q * task.c_max,
                                           base=q * task.c_max,
                                           coeffs=coeffs,
                                           count_caps=ccaps)

                def context(q, task=task, a=a):
                    return (f"{resource_name}/{task.name} "
                            f"EDF a={a} q={q}")

                def closes(q, bq, a=a, em=em):
                    return a + em.delta_min(q + 1) >= bq - EPS

                chain = kernels.Chain(task.name, em, context,
                                      element=element, closes=closes)
                chains.append(chain)
                task_chains.append((a, chain))
            meta.append((task, others, candidates, task_chains))
        kernels.run_chains(chains, tables, resource_name)
        for task, others, candidates, task_chains in meta:
            best_r = task.c_max
            best_busy = [task.c_max]
            best_q = 1
            best_a = 0.0
            for a, chain in task_chains:
                r_a = chain.r_max - a
                if r_a > best_r:
                    best_r = r_a
                    best_busy = chain.busy_times
                    best_q = chain.q_max
                    best_a = a
            blame = None
            if _obs.enabled:
                registry = _obs.metrics()
                registry.counter("edf.tasks_analyzed").inc()
                registry.histogram("edf.candidate_offsets").observe(
                    len(candidates))
                registry.histogram("edf.busy_window_activations").observe(
                    best_q)
                blame = self._blame(task, others, resource_name, best_r,
                                    best_busy, best_a)
            out[task.name] = TaskResult(name=task.name, r_min=task.c_min,
                                        r_max=best_r, busy_times=best_busy,
                                        q_max=best_q, blame=blame)
        return out

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str, horizon: float) -> TaskResult:
        others = [t for t in tasks if t is not task]
        em = task.event_model
        candidates = self._candidate_offsets(task, others, horizon)

        best_r = task.c_max
        best_busy: "list[float]" = [task.c_max]
        best_q = 1
        best_a = 0.0
        for a in candidates:
            last_w = [None]

            def busy_time(q: int, _a: float = a, last_w=last_w) -> float:
                abs_deadline = _a + em.delta_min(q) + task.deadline

                def workload(w: float) -> float:
                    demand = q * task.c_max
                    for j in others:
                        n_arrived = j.event_model.eta_plus(w)
                        n_deadline = j.event_model.eta_plus(
                            abs_deadline - j.deadline + _DEADLINE_EPS)
                        demand += min(n_arrived, n_deadline) * j.c_max
                    return demand

                w = fixed_point(workload, q * task.c_max,
                                context=f"{resource_name}/{task.name} "
                                        f"EDF a={_a} q={q}",
                                resource=resource_name, task=task.name,
                                hint=(last_w[0] if kernels.warm_start
                                      else None))
                last_w[0] = w
                return w

            def window_closes(q: int, bq: float, _a: float = a) -> bool:
                return _a + em.delta_min(q + 1) >= bq - EPS

            r_a, busy_times, q_max = multi_activation_loop(
                em, busy_time, window_closes,
                resource=resource_name, task=task.name)
            r_a -= a  # responses are measured from task i's arrival
            if r_a > best_r:
                best_r = r_a
                best_busy = busy_times
                best_q = q_max
                best_a = a

        blame = None
        if _obs.enabled:
            registry = _obs.metrics()
            registry.counter("edf.tasks_analyzed").inc()
            registry.histogram("edf.candidate_offsets").observe(
                len(candidates))
            registry.histogram("edf.busy_window_activations").observe(
                best_q)
            blame = self._blame(task, others, resource_name, best_r,
                                best_busy, best_a)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=best_r,
                          busy_times=best_busy, q_max=best_q, blame=blame)

    @staticmethod
    def _blame(task: TaskSpec, others: Sequence[TaskSpec],
               resource_name: str, r_max: float,
               busy_times: Sequence[float], a: float) -> Blame:
        """Decompose the WCRT at the critical candidate (a*, q*).

        At the fixed point ``B = q*·C⁺ + Σ min(η⁺_j(B), n_j(d))·C_j⁺``
        with ``d`` the critical job's absolute deadline; terms whose
        arrival count exceeds the deadline-eligible count are marked
        ``deadline-limited`` — the interference EDF filters out is
        exactly what fixed priorities would have charged.
        """
        em = task.event_model
        arrivals = [a + em.delta_min(q)
                    for q in range(1, len(busy_times) + 1)]
        q = critical_activation(busy_times, arrivals)
        bq = busy_times[q - 1]
        abs_deadline = a + em.delta_min(q) + task.deadline
        terms = []
        for j in others:
            n_arrived = j.event_model.eta_plus(bq)
            n_deadline = j.event_model.eta_plus(
                abs_deadline - j.deadline + _DEADLINE_EPS)
            n = min(n_arrived, n_deadline)
            terms.append(BlameTerm(
                j.name, KIND_INTERFERENCE, contribution=n * j.c_max,
                activations=n, c_max=j.c_max,
                note=("deadline-limited" if n_deadline < n_arrived
                      else "")))
        return Blame(
            task=task.name, resource=resource_name, policy="edf", q=q,
            busy_time=bq, arrival=arrivals[q - 1], wcrt=r_max,
            own=BlameTerm(task.name, KIND_OWN, contribution=q * task.c_max,
                          activations=q, c_max=task.c_max),
            interference=terms,
            candidate={"offset": a, "abs_deadline": abs_deadline})
