"""Earliest-deadline-first (EDF) analysis.

Two entry points:

* :func:`edf_demand_schedulable` — the processor-demand criterion over the
  synchronous busy period: ``Σ_i dbf_i(t) <= t`` for every testing point,
  where ``dbf_i(t) = η⁺_i(t - D_i + ε) * C_i⁺`` counts jobs whose arrival
  *and* deadline fall inside ``[0, t]``.

* :class:`EDFScheduler` — conservative response-time bounds in the style
  of Spuri's analysis: for the q-th job of task i (arriving at δ⁻_i(q)
  into a synchronous busy window, absolute deadline d = δ⁻_i(q) + D_i),
  only jobs of j with deadlines at or before d interfere:

      n_j(d) = η⁺_j(d - D_j + ε)
      B_i(q): w = q * C_i⁺ + Σ_{j ≠ i} min(η⁺_j(w), n_j(d)) * C_j⁺
      r_i(q) = max(B_i(q) - δ⁻_i(q), C_i⁺)

  The synchronous release is the critical instant for the deadline-based
  interference bound, making the result conservative (it may overestimate
  relative to Spuri's exact search over all busy-period offsets).
"""

from __future__ import annotations

from typing import Sequence

from .._errors import ModelError, NotSchedulableError
from ..timebase import EPS
from .busy_window import fixed_point, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult

_DEADLINE_EPS = 1e-6


def synchronous_busy_period(tasks: Sequence[TaskSpec]) -> float:
    """Length of the longest processor busy period after a synchronous
    release (all streams fire together at t = 0)."""

    def workload(w: float) -> float:
        return sum(t.event_model.eta_plus(w) * t.c_max for t in tasks)

    start = sum(t.c_max for t in tasks)
    return fixed_point(workload, start, context="EDF busy period")


def edf_demand_schedulable(tasks: Sequence[TaskSpec]) -> bool:
    """Processor-demand schedulability test for EDF.

    Tests every absolute deadline inside the synchronous busy period.
    Requires every task to carry a relative ``deadline``.
    """
    for t in tasks:
        if t.deadline is None or t.deadline <= 0:
            raise ModelError(f"EDF task {t.name} needs a positive deadline")
    horizon = synchronous_busy_period(tasks)
    # Testing points: every absolute deadline of every task within the
    # busy period.
    points = set()
    for t in tasks:
        k = 1
        while True:
            d = t.event_model.delta_min(k) + t.deadline
            if d > horizon + EPS:
                break
            points.add(d)
            k += 1
            if k > 100_000:
                break
    for point in sorted(points):
        demand = 0.0
        for t in tasks:
            jobs = t.event_model.eta_plus(point - t.deadline + _DEADLINE_EPS)
            demand += jobs * t.c_max
        if demand > point + EPS:
            return False
    return True


class EDFScheduler(Scheduler):
    """Deadline-based conservative EDF response-time analysis."""

    policy = "edf"

    def __init__(self, utilization_limit: float = 1.0):
        self.utilization_limit = utilization_limit

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource") -> ResourceResult:
        self.check_unique_names(tasks)
        for t in tasks:
            if t.deadline is None or t.deadline <= 0:
                raise ModelError(
                    f"EDF task {t.name} needs a positive deadline")
        util = self.total_load(tasks)
        if util > self.utilization_limit + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: utilization {util:.4f} exceeds "
                f"{self.utilization_limit}", resource=resource_name,
                utilization=util)
        results = {}
        for task in tasks:
            results[task.name] = self._analyze_task(task, tasks,
                                                    resource_name)
        return ResourceResult(resource_name, util, results)

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        others = [t for t in tasks if t is not task]

        def busy_time(q: int) -> float:
            abs_deadline = task.event_model.delta_min(q) + task.deadline

            def workload(w: float) -> float:
                demand = q * task.c_max
                for j in others:
                    n_arrived = j.event_model.eta_plus(w)
                    n_deadline = j.event_model.eta_plus(
                        abs_deadline - j.deadline + _DEADLINE_EPS)
                    demand += min(n_arrived, n_deadline) * j.c_max
                return demand

            return fixed_point(workload, q * task.c_max,
                               context=f"{resource_name}/{task.name} "
                                       f"EDF q={q}")

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time)
        r_max = max(r_max, task.c_max)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max)
