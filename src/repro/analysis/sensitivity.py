"""Sensitivity analysis: how much slack does a design have?

SymTA/S-style what-if searches on top of the local analyses:

* :func:`max_wcet_scaling` — the largest factor by which *all* WCETs can
  be inflated before some task misses its deadline (a robustness metric
  for the whole resource).
* :func:`task_wcet_slack` — the largest additional WCET one task can
  absorb, everything else fixed.
* :func:`min_period_scaling` — the smallest factor by which all input
  periods can be compressed (load increased) while staying schedulable.

All searches are monotone-predicate bisections via
:func:`binary_search_max`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, Sequence

from .._errors import AnalysisError, ModelError, ReproError
from ..eventmodels.standard import StandardEventModel
from .interface import Scheduler, TaskSpec
from .memo import LocalAnalysisMemo

#: Relative precision of the bisection searches.
DEFAULT_PRECISION = 1e-3


def binary_search_max(feasible: Callable[[float], bool], lo: float,
                      hi: float, precision: float = DEFAULT_PRECISION,
                      expand: bool = True) -> float:
    """Largest x in [lo, hi] with ``feasible(x)``.

    ``feasible`` must be monotone (True below the returned value).  When
    *expand* is set and ``feasible(hi)`` still holds, the upper bracket
    doubles (up to 2^20 times) before bisection; a non-positive bracket
    is re-seeded at 1.0 so expansion makes progress from ``hi == 0``.
    Raises :class:`AnalysisError` if even *lo* is infeasible and
    :class:`ModelError` for malformed intervals (``lo > hi``, non-finite
    bounds, non-positive precision).
    """
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise ModelError(f"search interval [{lo}, {hi}] must be finite")
    if lo > hi:
        raise ModelError(f"empty search interval [{lo}, {hi}]")
    if precision <= 0 or not math.isfinite(precision):
        raise ModelError(f"precision must be positive, got {precision}")
    if not feasible(lo):
        raise AnalysisError(f"lower bound {lo} already infeasible")
    if lo == hi and not expand:
        return lo
    if feasible(hi):
        if not expand:
            return hi
        for _ in range(20):
            grown = hi * 2.0 if hi > 0 else 1.0
            if not math.isfinite(grown):
                return hi
            lo, hi = hi, grown
            if not feasible(hi):
                break
        else:
            return hi
    while (hi - lo) > precision * max(1.0, abs(hi)):
        mid = (lo + hi) / 2.0
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def _meets_deadlines(scheduler: Scheduler, tasks: Sequence[TaskSpec],
                     deadlines: "Dict[str, float]",
                     memo: "LocalAnalysisMemo | None" = None) -> bool:
    """Feasibility probe; with a *memo*, bisection probes reuse every
    task whose influence cone a probe leaves untouched (e.g. under SPP,
    inflating one task never dirties higher-priority tasks).  Reuse is
    fingerprint-exact, so the predicate — and hence the bisection
    trajectory and the returned bound — is unchanged."""
    try:
        if memo is None:
            result = scheduler.analyze(list(tasks), "sensitivity")
        else:
            result, _ = memo.analyze(scheduler, list(tasks),
                                     "sensitivity")
    except ReproError:
        return False
    return all(result[name].r_max <= deadline + 1e-9
               for name, deadline in deadlines.items())


def max_wcet_scaling(scheduler: Scheduler, tasks: Sequence[TaskSpec],
                     deadlines: "Dict[str, float]",
                     precision: float = DEFAULT_PRECISION) -> float:
    """Largest uniform WCET inflation factor keeping all deadlines."""
    _check_deadlines(tasks, deadlines)
    memo = LocalAnalysisMemo()

    def feasible(factor: float) -> bool:
        scaled = [replace(t, c_min=t.c_min * factor,
                          c_max=t.c_max * factor) for t in tasks]
        return _meets_deadlines(scheduler, scaled, deadlines, memo)

    return binary_search_max(feasible, 1e-6, 1.0, precision)


def task_wcet_slack(scheduler: Scheduler, tasks: Sequence[TaskSpec],
                    task_name: str, deadlines: "Dict[str, float]",
                    precision: float = DEFAULT_PRECISION) -> float:
    """Largest extra WCET *task_name* can absorb, all deadlines kept."""
    _check_deadlines(tasks, deadlines)
    if not any(t.name == task_name for t in tasks):
        raise ModelError(f"unknown task {task_name!r}")
    memo = LocalAnalysisMemo()

    def feasible(extra: float) -> bool:
        scaled = [replace(t, c_max=t.c_max + extra,
                          c_min=t.c_min) if t.name == task_name else t
                  for t in tasks]
        return _meets_deadlines(scheduler, scaled, deadlines, memo)

    base = max(t.c_max for t in tasks)
    return binary_search_max(feasible, 0.0, base, precision)


def min_period_scaling(scheduler: Scheduler, tasks: Sequence[TaskSpec],
                       deadlines: "Dict[str, float]",
                       precision: float = DEFAULT_PRECISION) -> float:
    """Smallest factor by which every (standard-model) input period can
    be multiplied while staying schedulable — values < 1 mean the system
    tolerates a proportional rate increase.

    Only tasks with :class:`StandardEventModel` inputs are supported
    (arbitrary curves have no canonical "period" knob).
    """
    _check_deadlines(tasks, deadlines)
    for t in tasks:
        if not isinstance(t.event_model, StandardEventModel):
            raise ModelError(
                f"task {t.name}: period scaling needs standard event "
                f"models")
    memo = LocalAnalysisMemo()

    def feasible_inverse(speedup: float) -> bool:
        # speedup >= 1 compresses periods by 1/speedup.
        scaled = []
        for t in tasks:
            em = t.event_model
            factor = 1.0 / speedup
            scaled.append(replace(t, event_model=StandardEventModel(
                em.period * factor, em.jitter * factor,
                em.d_min * factor, sporadic=em.sporadic)))
        # Deadlines stay absolute: the question is rate tolerance.
        return _meets_deadlines(scheduler, scaled, deadlines, memo)

    speedup = binary_search_max(feasible_inverse, 1.0, 4.0, precision)
    return 1.0 / speedup


def _check_deadlines(tasks: Sequence[TaskSpec],
                     deadlines: "Dict[str, float]") -> None:
    names = {t.name for t in tasks}
    for name in deadlines:
        if name not in names:
            raise ModelError(f"deadline for unknown task {name!r}")
    for name, d in deadlines.items():
        if d <= 0:
            raise ModelError(f"deadline of {name!r} must be positive")
