"""Analysis-facing task description and the scheduler interface.

The analysis layer is deliberately decoupled from the system graph of
:mod:`repro.system`: local analyses consume plain :class:`TaskSpec` value
objects, which the system layer constructs from its richer task objects on
every global iteration.  That keeps each scheduling analysis a pure
function of (task set) → (results), directly unit-testable.

Priority convention
-------------------
**Smaller numeric value = higher priority** throughout the library,
matching CAN identifier semantics (lower ID wins arbitration).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .._errors import ModelError
from ..eventmodels.base import EventModel
from .results import ResourceResult, TaskResult


@dataclass
class TaskSpec:
    """Everything a local analysis needs to know about one task.

    Attributes
    ----------
    name:
        Unique task name on its resource.
    c_min / c_max:
        Best-/worst-case core execution time (or frame transmission time).
    event_model:
        Activating event model (the *outer* model for hierarchical
        streams).
    priority:
        Static priority; smaller = higher.  Used by SPP/SPNP.
    slot:
        Time-slot or quantum length for TDMA / round-robin.
    deadline:
        Relative deadline, used by EDF.
    blocking:
        Direct blocking time from shared resources (the priority-ceiling
        term B_i: the longest lower-priority critical section that can
        delay this task once per busy window).  Added to the SPP busy
        window; SPNP adds it on top of the transmission blocking.
    """

    name: str
    c_min: float
    c_max: float
    event_model: EventModel
    priority: int = 0
    slot: Optional[float] = None
    deadline: Optional[float] = None
    blocking: float = 0.0

    def __post_init__(self):
        if self.c_min < 0 or self.c_max < self.c_min:
            raise ModelError(
                f"task {self.name}: need 0 <= c_min <= c_max, got "
                f"[{self.c_min}, {self.c_max}]")
        if self.c_max == 0:
            raise ModelError(f"task {self.name}: c_max must be positive")
        if self.blocking < 0:
            raise ModelError(
                f"task {self.name}: blocking must be >= 0, got "
                f"{self.blocking}")

    def load(self, accuracy: int = 1000) -> float:
        """Long-run processor demand of this task."""
        return self.c_max * self.event_model.load(accuracy)


class Scheduler(ABC):
    """A local scheduling analysis: maps a task set to response times."""

    #: Human-readable policy name ("spp", "spnp", ...).
    policy: str = "abstract"

    @abstractmethod
    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource") -> ResourceResult:
        """Run the local analysis; raises
        :class:`~repro._errors.NotSchedulableError` on overload.

        Concrete schedulers additionally accept a ``reuse`` keyword: a
        ``{task_name: TaskResult}`` mapping of results known to still be
        valid (see :mod:`repro.analysis.memo`).  A scheduler may skip
        re-deriving those tasks — set-wide validity checks (utilization,
        unique names, parameter validation) always run fresh.
        """

    def influence_fingerprint(self, task: TaskSpec,
                              tasks: Sequence[TaskSpec]):
        """Canonical key of everything *task*'s :class:`TaskResult`
        depends on under this policy, or ``None`` when unknown.

        The contract backing per-task incremental reuse: if two calls to
        :meth:`analyze` present the same influence fingerprint for a
        task, its ``TaskResult`` is identical (local analyses are pure
        functions of their spec sets).  The default covers *every* spec
        plus the scheduler parameters — universally sound, never over-
        eager.  Policies with a narrower dependency cone override it
        (SPP: same-or-higher priorities; TDMA: own spec + cycle length).
        """
        from .memo import resource_fingerprint
        return resource_fingerprint(self, tasks)

    @staticmethod
    def total_load(tasks: Sequence[TaskSpec], accuracy: int = 1000) -> float:
        return sum(t.load(accuracy) for t in tasks)

    @staticmethod
    def check_unique_names(tasks: Sequence[TaskSpec]) -> None:
        seen = set()
        for t in tasks:
            if t.name in seen:
                raise ModelError(f"duplicate task name {t.name!r}")
            seen.add(t.name)
