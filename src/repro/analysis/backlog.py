"""Backlog (queue-length) bounds from busy-window results.

Every activation of a task occupies a queue slot from its arrival until
its completion.  Within a q-event busy window B(q), just before the j-th
completion the queue holds every activation that arrived in [0, B(j))
minus the j - 1 already completed, so

    backlog  <=  max_{1 <= q <= q_max}  [ η⁺(B(q)) - (q - 1) ]

where q_max is the last activation of the longest busy window (after it
the resource idles and the queue is empty).  The bound is exact for the
critical-instant arrival pattern the busy-window analysis assumes.

Buffer bytes follow by multiplying with the queued payload size —
:func:`buffer_bound` does that for COM-layer frames.
"""

from __future__ import annotations

from .._errors import AnalysisError
from ..eventmodels.base import EventModel
from .results import TaskResult


def backlog_bound(result: TaskResult, event_model: EventModel) -> int:
    """Maximum number of simultaneously queued activations of a task."""
    if not result.busy_times:
        raise AnalysisError(
            f"task {result.name}: no busy-window data recorded; "
            f"the producing analysis does not support backlog bounds")
    best = 1
    for q, busy in enumerate(result.busy_times, start=1):
        pending = event_model.eta_plus(busy) - (q - 1)
        if pending > best:
            best = pending
    return best


def buffer_bound(result: TaskResult, event_model: EventModel,
                 item_bytes: int) -> int:
    """Worst-case buffer occupancy in bytes for queued items of
    ``item_bytes`` each (e.g. frame payloads in a gateway queue)."""
    return backlog_bound(result, event_model) * item_bytes
