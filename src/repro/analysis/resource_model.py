"""Hierarchical scheduling: the periodic resource model (Shin & Lee).

The paper's introduction contrasts its contribution (hierarchical *event
streams*) with the established hierarchical *scheduling* work [8][10]:
local analyses that run a task set inside a resource share instead of a
dedicated processor.  This module supplies that established layer so the
library covers both hierarchy dimensions.

A periodic resource Γ(Π, Θ) guarantees Θ units of service every period Π.
Its worst-case supply-bound function (Shin & Lee, RTSS'03) assumes the
supply arrived as early as possible in one period and as late as possible
in the next, producing an initial blackout of ``2(Π - Θ)``:

    sbf(t) = k * Θ + max(0, t' - k * Π - (Π - Θ))
             where t' = t - (Π - Θ), k = floor(t' / Π)   (0 for t' <= 0)

:class:`HierarchicalSPPScheduler` runs the SPP busy-window analysis with
demand served through the sbf: the q-event busy time becomes the least
``w`` with ``sbf(w) >= demand(w)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .._errors import ModelError, NotSchedulableError
from ..timebase import EPS
from .busy_window import MAX_FIXED_POINT_ITER, multi_activation_loop
from .interface import Scheduler, TaskSpec
from .results import ResourceResult, TaskResult


@dataclass(frozen=True)
class PeriodicResource:
    """Periodic resource abstraction Γ(Π, Θ)."""

    period: float
    budget: float

    def __post_init__(self):
        if self.period <= 0:
            raise ModelError(f"server period must be > 0, got {self.period}")
        if not 0 < self.budget <= self.period:
            raise ModelError(
                f"server budget must lie in (0, period], got {self.budget}")

    @property
    def bandwidth(self) -> float:
        """Long-run fraction of the parent resource: Θ / Π."""
        return self.budget / self.period

    def sbf(self, t: float) -> float:
        """Worst-case supply in any window of length ``t``."""
        if t <= 0:
            return 0.0
        shifted = t - (self.period - self.budget)
        if shifted <= 0:
            return 0.0
        k = math.floor(shifted / self.period)
        return k * self.budget + max(
            0.0, min(self.budget,
                     shifted - k * self.period - (self.period - self.budget)))

    def sbf_inverse(self, demand: float) -> float:
        """Smallest window guaranteeing ``demand`` units of supply."""
        if demand <= 0:
            return 0.0
        full = math.ceil(demand / self.budget - EPS) - 1
        rem = demand - full * self.budget
        return 2 * (self.period - self.budget) + full * self.period + rem

    def lsbf(self, t: float) -> float:
        """Linear lower supply bound: bandwidth * (t - 2(Π - Θ))."""
        return max(0.0, self.bandwidth * (t - 2 * (self.period - self.budget)))

    def as_task_spec(self, event_model, name: str = "server",
                     priority: int = 0) -> TaskSpec:
        """The server as it appears on its *parent* resource: a task with
        WCET Θ activated by the given (typically periodic Π) model."""
        return TaskSpec(name=name, c_min=self.budget, c_max=self.budget,
                        event_model=event_model, priority=priority)


@dataclass(frozen=True)
class BoundedDelayResource:
    """Bounded-delay resource abstraction (α, Δ).

    Guarantees a long-run fraction ``alpha`` of the parent resource with
    an initial service delay of at most ``delay``::

        sbf(t) = max(0, alpha * (t - delay))

    This is the classic abstraction for bandwidth-sharing servers
    (credit-based shapers, proportional-share schedulers) and the linear
    companion of the periodic resource model (a Γ(Π, Θ) is covered by
    the bounded-delay pair ``(Θ/Π, 2(Π - Θ))``).
    """

    alpha: float
    delay: float

    def __post_init__(self):
        if not 0 < self.alpha <= 1:
            raise ModelError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.delay < 0:
            raise ModelError(f"delay must be >= 0, got {self.delay}")

    @property
    def bandwidth(self) -> float:
        return self.alpha

    def sbf(self, t: float) -> float:
        return max(0.0, self.alpha * (t - self.delay))

    def sbf_inverse(self, demand: float) -> float:
        if demand <= 0:
            return 0.0
        return self.delay + demand / self.alpha

    @classmethod
    def covering(cls, server: PeriodicResource) -> "BoundedDelayResource":
        """The bounded-delay pair conservatively covering a periodic
        resource (its linear lower supply bound)."""
        return cls(server.bandwidth,
                   2 * (server.period - server.budget))


class HierarchicalSPPScheduler(Scheduler):
    """SPP analysis of a task set running inside a resource share.

    Accepts any server abstraction exposing ``bandwidth``, ``sbf`` and
    ``sbf_inverse`` — :class:`PeriodicResource` and
    :class:`BoundedDelayResource` both qualify.
    """

    policy = "hspp"

    def __init__(self, server):
        for attr in ("bandwidth", "sbf", "sbf_inverse"):
            if not hasattr(server, attr):
                raise ModelError(
                    f"server {server!r} lacks {attr!r}; not a supply "
                    f"abstraction")
        self.server = server

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "resource",
                reuse: "Optional[dict]" = None) -> ResourceResult:
        # ``reuse`` is accepted for interface uniformity but ignored:
        # the hierarchical analysis keeps its scalar loop (recomputing a
        # reusable task is always sound, just not skipped here).
        self.check_unique_names(tasks)
        util = self.total_load(tasks)
        if util > self.server.bandwidth + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}: demand {util:.4f} exceeds server "
                f"bandwidth {self.server.bandwidth:.4f}",
                resource=resource_name, utilization=util)
        results = {}
        for task in tasks:
            results[task.name] = self._analyze_task(task, tasks,
                                                    resource_name)
        return ResourceResult(resource_name, util, results)

    def _analyze_task(self, task: TaskSpec, tasks: Sequence[TaskSpec],
                      resource_name: str) -> TaskResult:
        interferers = [t for t in tasks
                       if t is not task and t.priority <= task.priority]
        server = self.server

        def busy_time(q: int) -> float:
            # Least w with sbf(w) >= demand(w); iterate
            # w <- sbf_inverse(demand(w)), monotone from below.
            w = server.sbf_inverse(q * task.c_max)
            for _ in range(MAX_FIXED_POINT_ITER):
                demand = q * task.c_max + sum(
                    j.event_model.eta_plus(w) * j.c_max
                    for j in interferers)
                w_next = server.sbf_inverse(demand)
                if w_next <= w + EPS:
                    return max(w, w_next)
                w = w_next
            raise NotSchedulableError(
                f"{resource_name}/{task.name}: hierarchical busy window "
                f"did not converge")

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time)
        # Best case: supply available immediately, no interference.
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"server_bandwidth": server.bandwidth})
