"""Run a global analysis and collect its explanation artefacts.

:func:`explain_system` wraps :func:`repro.system.propagation.analyze_system`
with observability forced on, so that the per-policy solvers attach
:class:`~repro.explain.blame.Blame` records and the propagation engine
records the event-model lineage DAG.  The result is an
:class:`Explanation` bundling the converged :class:`SystemResult`, the
per-task blame decompositions, and a :class:`LineageGraph` snapshot::

    from repro.explain import explain_system
    ex = explain_system(build_system("hem"))
    print(ex.render_blame_table())
    print(ex.render_lineage("T3"))

Unlike :mod:`blame` and :mod:`lineage`, this module sits *above* the
analysis and system layers, so :mod:`repro.explain`'s ``__init__`` loads
it lazily to keep the solver → blame import edge acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs as _obs
from ..analysis.results import SystemResult
from ..system.model import System
from ..system.propagation import DEFAULT_MAX_ITERATIONS, analyze_system
from ..viz.tables import render_table
from .blame import Blame
from .lineage import LineageGraph, lineage, reset_lineage


@dataclass
class Explanation:
    """Everything recorded while explaining one system analysis."""

    system_name: str
    result: SystemResult
    #: Task name → blame decomposition (every task the solvers analysed).
    blames: Dict[str, Blame] = field(default_factory=dict)
    #: Snapshot of the event-model derivation DAG.
    graph: LineageGraph = field(default_factory=lambda: LineageGraph({}))
    #: Task name → the activation port whose lineage explains the task
    #: (its single input, or the synthetic ``<task>.act`` join node).
    activation_ports: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def blame(self, task: str) -> Blame:
        try:
            return self.blames[task]
        except KeyError:
            raise KeyError(
                f"no blame recorded for task {task!r}; known: "
                f"{sorted(self.blames)}") from None

    def wcrt(self, task: str) -> Optional[float]:
        return self.result.wcrt(task)

    def activation_port(self, task: str) -> str:
        try:
            return self.activation_ports[task]
        except KeyError:
            raise KeyError(
                f"unknown task {task!r}; known: "
                f"{sorted(self.activation_ports)}") from None

    # ------------------------------------------------------------------
    def render_blame_table(self, floatfmt: str = ".1f") -> str:
        """Markdown-ish summary table, one row per task."""
        return render_blame_table(self.blames, floatfmt=floatfmt)

    def render_blame(self, task: str, floatfmt: str = ".1f") -> str:
        """Per-term breakdown of one task's WCRT."""
        return render_blame(self.blame(task), floatfmt=floatfmt)

    def render_lineage(self, task_or_port: str) -> str:
        """ASCII derivation tree for a task's activation (or any port)."""
        from ..viz.lineage import render_lineage as _render

        port = self.activation_ports.get(task_or_port, task_or_port)
        return _render(self.graph, port)

    def lineage_to_dot(self, task_or_port: Optional[str] = None) -> str:
        """DOT of the lineage DAG (restricted to one task's ancestry
        when *task_or_port* is given)."""
        from ..viz.lineage import lineage_to_dot as _to_dot

        if task_or_port is None:
            return _to_dot(self.graph)
        port = self.activation_ports.get(task_or_port, task_or_port)
        return _to_dot(self.graph, roots=[port])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system_name,
            "iterations": self.result.iterations,
            "converged": self.result.converged,
            "wcrt": {t: self.result.wcrt(t) for t in sorted(self.blames)},
            "blames": {t: b.to_dict()
                       for t, b in sorted(self.blames.items())},
            "lineage": self.graph.to_dict(),
            "activation_ports": dict(self.activation_ports),
        }


def explain_system(system: System,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS,
                   check: bool = True) -> Explanation:
    """Analyse *system* with explanation recording on.

    Observability is enabled for the duration of the run (and restored
    afterwards); the lineage recorder is reset first so the snapshot
    contains exactly this system's derivations.  With ``check=True``
    every blame record is verified to sum to its reported WCRT before
    returning.
    """
    was_enabled = _obs.enabled
    reset_lineage()
    _obs.configure(enabled=True)
    try:
        result = analyze_system(system, max_iterations=max_iterations)
    finally:
        _obs.configure(enabled=was_enabled)

    blames: Dict[str, Blame] = {}
    for rr in result.resource_results.values():
        for name, tr in rr.task_results.items():
            if tr.blame is not None:
                blames[name] = tr.blame
    if check:
        for b in blames.values():
            b.check()

    ports = {name: (task.inputs[0] if len(task.inputs) == 1
                    else f"{name}.act")
             for name, task in system.tasks.items() if task.inputs}
    return Explanation(system_name=system.name, result=result,
                       blames=blames, graph=lineage().graph(),
                       activation_ports=ports)


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

def render_blame_table(blames: Dict[str, Blame],
                       floatfmt: str = ".1f") -> str:
    """One summary row per task: WCRT and where it comes from."""
    headers = ["task", "resource", "policy", "q*", "WCRT", "own",
               "blocking", "interference", "other", "dominant interferer"]
    rows: List[List[object]] = []
    for name in sorted(blames):
        b = blames[name]
        dom = b.dominant()
        extras = float(sum(t.contribution for t in b.extras))
        rows.append([
            name, b.resource, b.policy, b.q, float(b.wcrt),
            float(b.own.contribution),
            b.blocking.contribution if b.blocking is not None else 0.0,
            float(b.interference_total), extras,
            (f"{dom.name} ({format(dom.contribution, floatfmt)})"
             if dom is not None else "-"),
        ])
    return render_table(headers, rows, floatfmt=floatfmt)


def render_blame(blame: Blame, floatfmt: str = ".1f") -> str:
    """Per-term breakdown of one decomposition, with the identity line."""
    headers = ["term", "kind", "contribution", "activations", "C+",
               "note"]
    rows: List[List[object]] = []
    for t in blame.terms():
        rows.append([t.name, t.kind, t.contribution,
                     (f"{t.activations:g}" if t.activations else "-"),
                     (t.c_max if t.c_max else "-"), t.note or "-"])
    cand = "".join(f", {k}={v:g}" for k, v in blame.candidate.items())
    head = (f"{blame.task} on {blame.resource} ({blame.policy}): "
            f"r+ = {blame.wcrt:g} at q*={blame.q}{cand}")
    ident = (f"sum(terms) = {blame.total():g} = B(q*); "
             f"B(q*) - arrival {blame.arrival:g} = {blame.explained_wcrt():g}"
             f" = r+")
    return "\n".join([head, render_table(headers, rows,
                                         floatfmt=floatfmt), ident])
