"""Event-model lineage: where did this port's activation model come from?

The global propagation engine (:mod:`repro.system.propagation`) resolves
every port's event model by walking the stream graph and applying
constructors (``Ω_pa`` pack, OR/AND join), the task-output operation Θ_τ
with its inner update ``B_{Θ,C}``, and the deconstructor ``Ψ`` (unpack).
When observability is enabled it records each derivation step here, so
after a run the full provenance chain of any activation model can be
queried and rendered (:mod:`repro.viz.lineage`):

    F1_rx.S3   unpack Ψ[S3]
      └─ F1    Θ_τ r=[37.5, 138.0] + inner update B_{Θτ,C_pa}
          └─ F1_pack   Ω_pa pack(triggering=[S1, S2] + timer, ...)
              ├─ S1    source
              ...

Nodes are keyed by port name and overwritten on re-recording, so after a
converged fixed-point run the graph reflects the final iteration.  The
recorder is process-global (like the tracer); drivers that analyse
several systems snapshot and reset between runs
(:meth:`LineageRecorder.graph`, :func:`reset_lineage`).

This module must stay import-light: the propagation engine imports it at
module load, so nothing here may import the analysis or system layers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Node kinds, in rough upstream→downstream order of the paper's
#: pipeline.
KIND_SOURCE = "source"
KIND_PACK = "pack"           # Ω_pa (Def. 8)
KIND_OR = "or_join"
KIND_AND = "and_join"
KIND_THETA = "theta_tau"     # Θ_τ output (+ inner update B when HEM)
KIND_UNPACK = "unpack"       # Ψ (Def. 10)
KIND_ACTIVATION = "activation"  # multi-input join in front of a task

#: Display symbols for renderers.
SYMBOLS = {
    KIND_SOURCE: "src",
    KIND_PACK: "Ω_pa",
    KIND_OR: "∨",
    KIND_AND: "∧",
    KIND_THETA: "Θ_τ",
    KIND_UNPACK: "Ψ",
    KIND_ACTIVATION: "join",
}


@dataclass
class LineageNode:
    """One derivation step: *port* was produced by *kind* from *inputs*.

    ``attrs`` carries step-specific detail — the construction rule of a
    pack, response-time interval and inner-update parameters of a Θ_τ
    step, the selected label of an unpack, the HEM outer/inner structure
    of hierarchical results.
    """

    port: str
    kind: str
    inputs: Tuple[str, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def symbol(self) -> str:
        return SYMBOLS.get(self.kind, self.kind)

    def describe(self) -> str:
        """One-line summary used by the ASCII renderer."""
        bits = [self.kind]
        rule = self.attrs.get("rule")
        if rule:
            bits.append(str(rule))
        if "label" in self.attrs:
            bits.append(f"label={self.attrs['label']}")
        if "r_min" in self.attrs:
            bits.append(f"r=[{self.attrs['r_min']:g}, "
                        f"{self.attrs['r_max']:g}]")
        if self.attrs.get("inner_update"):
            bits.append(str(self.attrs["inner_update"]))
        if self.attrs.get("inner_labels"):
            bits.append(f"inner={list(self.attrs['inner_labels'])}")
        if "model" in self.attrs:
            bits.append(str(self.attrs["model"]))
        return " ".join(bits)


class LineageGraph:
    """Immutable snapshot of recorded derivation steps — a DAG keyed by
    port name, queryable upstream."""

    def __init__(self, nodes: Dict[str, LineageNode]):
        self._nodes = dict(nodes)

    # ------------------------------------------------------------------
    def __contains__(self, port: str) -> bool:
        return port in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, port: str) -> Optional[LineageNode]:
        return self._nodes.get(port)

    def ports(self) -> List[str]:
        return sorted(self._nodes)

    def nodes(self) -> List[LineageNode]:
        return [self._nodes[p] for p in self.ports()]

    # ------------------------------------------------------------------
    def ancestors(self, port: str) -> List[LineageNode]:
        """Every node reachable upstream of *port* (excluding it),
        deduplicated, in BFS order."""
        seen = {port}
        order: List[LineageNode] = []
        frontier = list(self._inputs_of(port))
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            node = self._nodes.get(name)
            if node is None:
                continue
            order.append(node)
            frontier.extend(node.inputs)
        return order

    def chain(self, port: str) -> List[LineageNode]:
        """The derivation chain ending at *port*: the port's node first,
        then its ancestors upstream (BFS)."""
        head = self._nodes.get(port)
        tail = self.ancestors(port)
        return ([head] if head is not None else []) + tail

    def kinds_on_chain(self, port: str) -> List[str]:
        """The node kinds along :meth:`chain` — handy for asserting a
        hierarchy passed through pack/unpack."""
        return [n.kind for n in self.chain(port)]

    def _inputs_of(self, port: str) -> Tuple[str, ...]:
        node = self._nodes.get(port)
        return node.inputs if node is not None else ()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            port: {"kind": n.kind, "inputs": list(n.inputs),
                   "attrs": {k: _plain(v) for k, v in n.attrs.items()}}
            for port, n in sorted(self._nodes.items())
        }


def _plain(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return repr(value)


class LineageRecorder:
    """Mutable collector the propagation engine writes into.

    Recording is idempotent per port-and-iteration: :meth:`record`
    overwrites the node for a port, so re-resolution in later global
    iterations keeps only the final state.  A lock guards the node map —
    the engine is single-threaded today, but batch workers and future
    sharded backends may not be.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._nodes: Dict[str, LineageNode] = {}

    def record(self, port: str, kind: str,
               inputs: Sequence[str] = (), **attrs: Any) -> None:
        node = LineageNode(port, kind, tuple(inputs), attrs)
        with self._lock:
            self._nodes[port] = node

    def annotate(self, port: str, **attrs: Any) -> None:
        """Merge attributes into an existing node (no-op if absent)."""
        with self._lock:
            node = self._nodes.get(port)
            if node is not None:
                node.attrs.update(attrs)

    def graph(self) -> LineageGraph:
        """Immutable snapshot of the current DAG."""
        with self._lock:
            return LineageGraph(self._nodes)

    def reset(self) -> None:
        with self._lock:
            self._nodes.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)


_recorder = LineageRecorder()


def lineage() -> LineageRecorder:
    """The process-global lineage recorder (written by the propagation
    engine whenever ``repro.obs.enabled`` is on)."""
    return _recorder


def reset_lineage() -> None:
    """Drop all recorded derivation steps."""
    _recorder.reset()
