"""``python -m repro explain`` — explain a built-in example's results.

Runs the global analysis with explanation recording on and prints, for
every task (or one ``--task``), the WCRT blame table, the per-term
breakdown, and the activation-model lineage.  For ``rox08`` both paper
variants are analysed and the flat-vs-HEM WCRT delta is attributed to
the receiver-side activation counts::

    python -m repro explain rox08
    python -m repro explain rox08 --task T3 --dot lineage.dot
    python -m repro explain body_gateway --chrome trace.json

``--dot`` writes the lineage DAG as Graphviz DOT; ``--chrome`` writes
the span trace of the explained run in Chrome trace-event format (open
in https://ui.perfetto.dev or ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from ..system.model import System

#: Built-in explainable examples: name -> zero-arg System factory.
#: ``rox08`` is special-cased to also show the flat-variant delta.
EXAMPLES: Dict[str, Callable[[], System]] = {}


def _register_examples() -> None:
    if EXAMPLES:
        return
    from ..examples_lib import body_gateway, rox08
    EXAMPLES["rox08"] = lambda: rox08.build_system("hem")
    EXAMPLES["rox08-flat"] = lambda: rox08.build_system("flat")
    EXAMPLES["body_gateway"] = body_gateway.build


def explain_main(argv: Optional[Sequence[str]] = None) -> int:
    _register_examples()
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Explain an example's analysis results: WCRT blame "
                    "attribution and event-model lineage.")
    parser.add_argument(
        "example", choices=sorted(EXAMPLES),
        help="built-in example system to explain")
    parser.add_argument(
        "--task", default=None,
        help="only explain this task (default: all analysed tasks)")
    parser.add_argument(
        "--dot", default=None, metavar="PATH",
        help="write the lineage DAG as Graphviz DOT to PATH")
    parser.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="write the run's span trace in Chrome trace-event format "
             "(load in Perfetto or chrome://tracing)")
    args = parser.parse_args(argv)

    from .. import obs as _obs
    from .engine import explain_system

    # A Chrome export should cover exactly this run's spans.
    if args.chrome:
        _obs.configure(enabled=_obs.enabled, reset=True)

    system = EXAMPLES[args.example]()
    ex = explain_system(system)

    print(f"=== {ex.system_name}: converged in "
          f"{ex.result.iterations} iterations ===\n")
    print(ex.render_blame_table())

    if args.task is not None and args.task not in ex.blames:
        print(f"error: no such task: {args.task} "
              f"(known: {', '.join(sorted(ex.blames))})", file=sys.stderr)
        return 2
    tasks = [args.task] if args.task else sorted(ex.blames)

    for name in tasks:
        print(f"\n--- {name} ---")
        print(ex.render_blame(name))
        port = ex.activation_ports.get(name)
        if port is not None and port in ex.graph:
            print(f"\nactivation-model lineage ({port}):")
            print(ex.render_lineage(name))

    if args.example == "rox08":
        _print_flat_delta(ex, tasks)

    if args.dot:
        dot = ex.lineage_to_dot(args.task) if args.task \
            else ex.lineage_to_dot()
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(dot)
        print(f"\nlineage DAG -> {args.dot}")
    if args.chrome:
        from ..obs.export import tracer_to_chrome
        payload = tracer_to_chrome(_obs.get_tracer(), args.chrome)
        print(f"chrome trace: {len(payload['traceEvents'])} events "
              f"-> {args.chrome}")
    return 0


def _print_flat_delta(ex, tasks: Sequence[str]) -> None:
    """Attribute the flat-vs-HEM WCRT gap on the rox08 receiver tasks.

    The flat baseline charges every receiver task one activation per
    *frame* arrival; the HEM variant unpacks per-signal streams, so the
    blame records show directly which interference the hierarchy
    removed.
    """
    from ..examples_lib.rox08 import CPU_TASKS, build_system
    from .engine import explain_system

    flat = explain_system(build_system("flat"))
    rows = []
    for name in sorted(CPU_TASKS):
        hem_b, flat_b = ex.blames.get(name), flat.blames.get(name)
        if hem_b is None or flat_b is None:
            continue
        rows.append((name, flat_b, hem_b))
    if not rows:
        return
    print("\n=== flat baseline vs hierarchical event models ===")
    from ..viz.tables import render_table
    print(render_table(
        ["task", "WCRT flat", "WCRT hem", "delta", "interference flat",
         "interference hem"],
        [[n, f.wcrt, h.wcrt, f.wcrt - h.wcrt, float(f.interference_total),
          float(h.interference_total)] for n, f, h in rows]))
    for name, f, h in rows:
        if name not in tasks:
            continue
        removed = {t.name: t.contribution for t in f.interference}
        for t in h.interference:
            removed[t.name] = removed.get(t.name, 0.0) - t.contribution
        gone = {k: v for k, v in removed.items() if v > 1e-9}
        if gone:
            detail = ", ".join(f"{k} -{v:g}" for k, v in
                               sorted(gone.items()))
            print(f"  {name}: hierarchy removed interference {detail}")
