"""WCRT blame attribution records.

A busy-window analysis reports one number per task — the worst-case
response time — but the number is a sum with identifiable parts: the
task's own executions in the critical window, a blocking term, and one
activation×WCET product per interferer, all evaluated at the critical
activation q* (the activation whose response is maximal).  A
:class:`Blame` captures that decomposition so a user can see *which*
interferer dominates a bound and verify the flat-vs-HEM gap is caused by
the receiver-side activation counts, not by an analysis artefact.

The record is exact, not approximate: at the least fixed point the
workload equation holds with equality, so

    own + blocking + Σ interference + Σ extras  ==  B(q*)
    B(q*) - arrival                             ==  r⁺

up to floating-point residue (:meth:`Blame.residual` exposes it; the
consistency check in :meth:`Blame.check` asserts it is ~0).

This module is import-light on purpose: the per-policy solvers in
:mod:`repro.analysis` attach blame records behind the ``obs.enabled``
guard, and :mod:`repro.analysis.results` references the types, so
nothing here may import the analysis or system layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Term kinds (the ``kind`` field of :class:`BlameTerm`).
KIND_OWN = "own"
KIND_BLOCKING = "blocking"
KIND_INTERFERENCE = "interference"
KIND_SUPPLY = "supply"
KIND_ERRORS = "errors"


@dataclass(frozen=True)
class BlameTerm:
    """One additive contribution to a q*-event busy time.

    Attributes
    ----------
    name:
        The contributor: an interfering task/frame name, the analysed
        task itself (``kind="own"``), or a pseudo-contributor such as
        ``"tdma.cycle"`` or ``"can.errors"``.
    kind:
        One of ``own``, ``blocking``, ``interference``, ``supply``,
        ``errors``.
    contribution:
        Time units this term adds to the busy window.
    activations:
        Number of activations admitted into the window (η⁺ at the
        critical window; ``q*`` for the own term; 0 where the notion
        does not apply).
    c_max:
        Per-activation cost, when the term is activation×WCET shaped.
    note:
        Qualifier for capped terms, e.g. ``"deadline-limited"`` (EDF) or
        ``"slot-capped"`` (round robin).
    """

    name: str
    kind: str
    contribution: float
    activations: float = 0.0
    c_max: float = 0.0
    note: str = ""


@dataclass
class Blame:
    """Decomposition of one task's WCRT at the critical activation.

    ``wcrt == busy_time - arrival`` and ``busy_time == sum of all
    terms``; :meth:`check` verifies both identities.

    Attributes
    ----------
    task / resource / policy:
        Where the bound comes from.
    q:
        The critical activation index q* (1-based).
    busy_time:
        B(q*) — the q*-event busy time at the critical candidate.
    arrival:
        Earliest arrival of the q*-th activation relative to the window
        start: δ⁻(q*), plus the critical candidate offset ``a`` for EDF.
    wcrt:
        The reported r⁺ (``busy_time - arrival``).
    own:
        The q*·C⁺ own-execution term.
    blocking:
        Lower-priority/blocking term, when the policy has one.
    interference:
        Per-interferer activation×WCET terms.
    extras:
        Policy-specific additive terms (TDMA cycle wait, CAN error
        overhead).
    candidate:
        Free-form description of the critical candidate beyond ``q``
        (e.g. the EDF offset ``a``).
    """

    task: str
    resource: str
    policy: str
    q: int
    busy_time: float
    arrival: float
    wcrt: float
    own: BlameTerm
    blocking: Optional[BlameTerm] = None
    interference: List[BlameTerm] = field(default_factory=list)
    extras: List[BlameTerm] = field(default_factory=list)
    candidate: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def terms(self) -> List[BlameTerm]:
        """All additive terms: own, blocking, interference, extras."""
        out = [self.own]
        if self.blocking is not None:
            out.append(self.blocking)
        out.extend(self.interference)
        out.extend(self.extras)
        return out

    @property
    def interference_total(self) -> float:
        return sum(t.contribution for t in self.interference)

    def total(self) -> float:
        """Sum of every term — equals ``busy_time`` at the fixed point."""
        return sum(t.contribution for t in self.terms())

    def residual(self) -> float:
        """``total() - busy_time`` — floating-point residue, ~0."""
        return self.total() - self.busy_time

    def explained_wcrt(self) -> float:
        """``total() - arrival`` — must equal the reported WCRT."""
        return self.total() - self.arrival

    def check(self, tolerance: float = 1e-6) -> None:
        """Raise ``AssertionError`` when the decomposition does not add
        up to the reported bound (an analysis/attribution bug)."""
        if abs(self.residual()) > tolerance:
            raise AssertionError(
                f"{self.task}: blame terms sum to {self.total()!r} but "
                f"busy time is {self.busy_time!r}")
        if abs(self.explained_wcrt() - self.wcrt) > tolerance:
            raise AssertionError(
                f"{self.task}: explained WCRT {self.explained_wcrt()!r} "
                f"!= reported {self.wcrt!r}")

    def dominant(self) -> Optional[BlameTerm]:
        """The largest interference term, if any."""
        if not self.interference:
            return None
        return max(self.interference, key=lambda t: t.contribution)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (for job results and trace args)."""
        def term(t: BlameTerm) -> Dict[str, Any]:
            return {"name": t.name, "kind": t.kind,
                    "contribution": t.contribution,
                    "activations": t.activations, "c_max": t.c_max,
                    "note": t.note}

        return {
            "task": self.task,
            "resource": self.resource,
            "policy": self.policy,
            "q": self.q,
            "busy_time": self.busy_time,
            "arrival": self.arrival,
            "wcrt": self.wcrt,
            "terms": [term(t) for t in self.terms()],
            "candidate": dict(self.candidate),
        }


def critical_activation(busy_times: Sequence[float],
                        arrivals: Sequence[float]) -> int:
    """The 1-based activation index q* maximising ``B(q) - arrival(q)``.

    ``busy_times[q-1]`` is B(q) and ``arrivals[q-1]`` the q-th earliest
    arrival (δ⁻(q)); ties resolve to the earliest activation, matching
    the first-maximum semantics of the q-loop in
    :mod:`repro.analysis.busy_window`.
    """
    best_q = 1
    best_r = float("-inf")
    for i, (bq, arr) in enumerate(zip(busy_times, arrivals)):
        response = bq - arr
        if response > best_r:
            best_r = response
            best_q = i + 1
    return best_q
