"""repro.explain — result-level observability for the analysis engine.

Where :mod:`repro.obs` answers "what did the engine *do*" (spans,
counters, convergence residuals), this package answers "where does the
*result* come from":

* :mod:`repro.explain.blame` — WCRT blame attribution.  Every
  busy-window solver (:mod:`repro.analysis.spp`, ``spnp``, ``edf``,
  ``round_robin``, ``tdma``) decomposes the worst-case response time at
  the critical activation into own execution, blocking, and
  per-interferer activation×WCET contributions, attached to
  :class:`repro.analysis.results.TaskResult` as a structured
  :class:`Blame` record.
* :mod:`repro.explain.lineage` — event-model lineage.  The global
  propagation engine records, per port, how its activation model was
  derived (source → Θ_τ output → OR-join → ``Ω_pa`` pack → inner update
  ``B`` → ``Ψ`` unpack) as a queryable DAG; rendering lives in
  :mod:`repro.viz.lineage`.
* :mod:`repro.explain.engine` — the :func:`explain_system` driver that
  runs the global analysis with recording on and bundles blame, lineage,
  and the converged result into an :class:`Explanation`.
* :mod:`repro.explain.cli` — ``python -m repro explain``.

All recording sits behind the ``repro.obs.enabled`` master switch: with
observability off, the only cost at every instrumented call site is one
attribute load and one branch (the same contract as :mod:`repro.obs`).
"""

from __future__ import annotations

from .blame import Blame, BlameTerm
from .lineage import (
    LineageGraph,
    LineageNode,
    LineageRecorder,
    lineage,
    reset_lineage,
)

__all__ = [
    "Blame",
    "BlameTerm",
    "LineageGraph",
    "LineageNode",
    "LineageRecorder",
    "lineage",
    "reset_lineage",
    # lazily resolved (see __getattr__):
    "Explanation",
    "explain_system",
    "render_blame",
    "render_blame_table",
]

#: Names served lazily from :mod:`repro.explain.engine`.  The engine
#: imports the system layer, which imports the analysis layer, which
#: imports :mod:`repro.explain.blame` — importing it eagerly here would
#: close that cycle at package-import time.
_ENGINE_EXPORTS = ("Explanation", "explain_system", "render_blame",
                   "render_blame_table")


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from . import engine
        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
