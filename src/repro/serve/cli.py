"""``python -m repro serve`` / ``python -m repro submit`` CLIs.

Serve — run the analysis daemon::

    python -m repro serve --port 8787 --workers 4
    python -m repro serve --port 0 --queue-size 128 --cache-dir /tmp/srv

Submit — talk to a running daemon::

    python -m repro submit rox08                      # analyze example
    python -m repro submit quickstart --sample 4      # streaming sweep
    python -m repro submit rox08 --explain            # blame summary
    python -m repro submit oscillating --json         # raw JSON body

``submit`` auto-detects the request kind: a design-space name runs a
streaming sweep, an example name an analyze; ``--explain``/``--sweep``
/``--analyze`` force it.  Exit status 0 when the daemon answered ok,
1 when the request failed or was rejected.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .client import RequestRejected, ServeClient, ServeError
from .handlers import example_names, space_names
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_QUEUE_SIZE,
    DEFAULT_WORKERS,
    ServeDaemon,
)


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the analysis-as-a-service daemon: an async "
                    "HTTP+JSON API over the batch engine with shared "
                    "result/curve caches.")
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"listen port, 0 for ephemeral (default {DEFAULT_PORT})")
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, metavar="K",
        help=f"dispatcher worker threads (default {DEFAULT_WORKERS})")
    parser.add_argument(
        "--queue-size", type=int, default=DEFAULT_QUEUE_SIZE,
        metavar="N",
        help=f"request queue capacity before 429 backpressure "
             f"(default {DEFAULT_QUEUE_SIZE})")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result-store root (default .repro-serve)")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request queue-wait deadline")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress lifecycle log lines")
    args = parser.parse_args(argv)

    daemon = ServeDaemon(
        host=args.host, port=args.port, workers=args.workers,
        queue_size=args.queue_size, cache_dir=args.cache_dir,
        default_deadline=args.deadline, quiet=args.quiet)
    return daemon.run()


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    examples = example_names()
    spaces = space_names()
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit work to a running repro.serve daemon.",
        epilog=f"examples: {', '.join(examples)}; "
               f"spaces: {', '.join(spaces)}")
    parser.add_argument(
        "target",
        help="built-in example (analyze/explain) or design space "
             "(sweep); also accepts 'health'")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--analyze", action="store_true",
                      help="force an analyze request")
    mode.add_argument("--explain", action="store_true",
                      help="force an explain request")
    mode.add_argument("--sweep", action="store_true",
                      help="force a streaming sweep request")
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="sweep: random-sample N points instead of the grid")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep: sampling seed")
    parser.add_argument(
        "--priority", type=int, default=None,
        help="queue priority (lower runs sooner)")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="max seconds the request may wait in the daemon queue")
    parser.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="analyze/explain: global fixed-point iteration budget")
    parser.add_argument("--json", action="store_true",
                        help="print the raw JSON response body")
    args = parser.parse_args(argv)

    client = ServeClient(args.host, args.port)
    try:
        return _dispatch(client, args, examples, spaces)
    except RequestRejected as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"retry after {exc.retry_after:g}s", file=sys.stderr)
        if exc.job_key:
            print(f"resumable job key: {exc.job_key}", file=sys.stderr)
        return 1
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"is the daemon running? start one with: "
              f"python -m repro serve --port {args.port}",
              file=sys.stderr)
        return 1


def _dispatch(client: ServeClient, args, examples, spaces) -> int:
    if args.target == "health" and not (args.analyze or args.explain
                                        or args.sweep):
        health = client.health()
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0 if health.get("state") == "serving" else 1

    want_sweep = args.sweep or (args.target in spaces
                                and not (args.analyze or args.explain))
    if want_sweep:
        return _submit_sweep(client, args)
    if args.target not in examples:
        print(f"error: unknown target {args.target!r} "
              f"(examples: {', '.join(examples)}; "
              f"spaces: {', '.join(spaces)})", file=sys.stderr)
        return 2

    if args.explain:
        resp = client.explain(example=args.target,
                              max_iterations=args.max_iterations,
                              priority=args.priority,
                              deadline=args.deadline)
    else:
        resp = client.analyze(example=args.target,
                              max_iterations=args.max_iterations,
                              priority=args.priority,
                              deadline=args.deadline)
    if args.json:
        print(json.dumps(resp.data, indent=2, sort_keys=True))
        return 0 if resp.ok else 1
    cached = " (cached)" if resp.cached else ""
    print(f"{resp.kind} {args.target}: {resp.status}{cached} "
          f"[key {resp.key[:12]}, {resp.duration:.3f}s]")
    if not resp.ok:
        print(f"error: {resp.error}", file=sys.stderr)
        return 1
    if args.explain:
        wcrt = resp.data.get("wcrt", {})
        for task in sorted(wcrt):
            print(f"  {task}: wcrt {wcrt[task]:g}")
    else:
        data = resp.data
        print(f"  converged={data.get('converged')} "
              f"iterations={data.get('iterations')} "
              f"worst_wcrt={data.get('worst_wcrt'):g}")
        outcome = data.get("outcome")
        if outcome and outcome.get("degraded"):
            print(f"  DEGRADED: health={outcome.get('health')}")
    return 0


def _submit_sweep(client: ServeClient, args) -> int:
    def on_event(event) -> None:
        if args.json:
            print(json.dumps(event, sort_keys=True))
        elif event.get("type") == "job":
            status = event.get("status", "?")
            tag = "cached" if event.get("cached") else f"{status:>7}"
            print(f"  [{tag}] {event.get('label') or event.get('key', '')[:12]}")

    final = client.sweep(args.target, sample=args.sample,
                         seed=args.seed, priority=args.priority,
                         on_event=on_event)
    if args.json:
        print(json.dumps(final, sort_keys=True))
    else:
        print(final.get("table", ""))
        print(final.get("summary", ""))
    return 0 if not final.get("failed") else 1
