"""Request handlers: the seam from HTTP payloads into the batch engine.

Every served analysis flows through the existing content-addressed
machinery — the handler builds a :class:`~repro.batch.jobs.Job`, runs
it through a :class:`~repro.batch.executor.BatchRunner` over the
daemon's shared :class:`~repro.batch.store.ResultStore`, and returns
the :class:`~repro.batch.jobs.JobResult` as the response body.  That
buys the service, for free:

* **shared hot caches** — identical requests from any client hit the
  store (and the process-global compiled-curve LRU warms across
  requests, since all dispatcher threads share one process);
* **resumability** — a drained request's job key can be resubmitted
  later and may already be answered;
* **resilience** — analyze requests default to ``on_failure="degrade"``
  and the runner carries the batch
  :class:`~repro.resilience.retry.RetryPolicy`, so one pathological
  system degrades one response instead of the daemon.

Handlers run on dispatcher worker threads (they block on real
fixed-point work); everything they touch is thread-safe (the store is
internally locked, the metrics registry and event bus already are).

A new ``explain`` job kind is registered here so explanation requests
are content-addressed and cached exactly like analyze requests.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..batch.executor import BatchRunner
from ..batch.jobs import Job, job_kinds, register_job_kind
from ..batch.spaces import NAMED_SPACES, pipeline_system
from ..obs.context import TraceContext, new_request_id
from ..system.model import System
from ..system.serialize import system_to_dict

#: Built-in example systems servable by name: name -> builder.
EXAMPLES: Dict[str, Callable[[], System]] = {}


def _register_examples() -> None:
    if EXAMPLES:
        return
    from ..examples_lib import body_gateway, rox08, stress
    EXAMPLES["rox08"] = lambda: rox08.build_system("hem")
    EXAMPLES["rox08-flat"] = lambda: rox08.build_system("flat")
    EXAMPLES["body_gateway"] = body_gateway.build
    EXAMPLES["overloaded"] = stress.build_overloaded
    EXAMPLES["oscillating"] = stress.build_oscillating
    EXAMPLES["pipeline"] = pipeline_system


def example_names() -> List[str]:
    _register_examples()
    return sorted(EXAMPLES)


def space_names() -> List[str]:
    return sorted(NAMED_SPACES)


class BadRequest(Exception):
    """Client-side payload error → 400."""


def mint_trace_context(request_id: str = "",
                       root_span_id: "Optional[int]" = None,
                       endpoint: str = "") -> TraceContext:
    """One :class:`~repro.obs.context.TraceContext` per HTTP request.

    An id supplied by the client (``X-Repro-Request-Id``) is honoured
    so a caller can correlate across retries and daemons; otherwise a
    fresh one is minted.  The server activates the context on the
    worker thread executing the request, which stamps the id onto
    every span, bus event, and stored result produced underneath.
    """
    return TraceContext(request_id=request_id.strip() or new_request_id(),
                        root_span_id=root_span_id, endpoint=endpoint)


def resolve_system_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """``system`` (serialised dict) or ``example`` (builtin name) →
    canonical system dict.  Raises :class:`BadRequest` otherwise."""
    _register_examples()
    system = payload.get("system")
    example = payload.get("example")
    if system is not None and example is not None:
        raise BadRequest("give either 'system' or 'example', not both")
    if system is not None:
        if not isinstance(system, dict):
            raise BadRequest("'system' must be a serialised system dict")
        return system
    if example is not None:
        builder = EXAMPLES.get(example)
        if builder is None:
            raise BadRequest(
                f"unknown example {example!r} "
                f"(known: {', '.join(sorted(EXAMPLES))})")
        return system_to_dict(builder())
    raise BadRequest("payload needs a 'system' dict or an 'example' name")


# ----------------------------------------------------------------------
# the explain job kind (registered on serve import; cached like analyze)
# ----------------------------------------------------------------------
@register_job_kind("explain")
def _run_explain(payload: "Dict[str, Any]") -> "Dict[str, Any]":
    """WCRT blame attribution + lineage of one serialised system.

    Payload: ``system`` (system dict), optional ``max_iterations``.
    Returns :meth:`repro.explain.engine.Explanation.to_dict`.
    """
    from ..explain.engine import explain_system
    from ..system.propagation import DEFAULT_MAX_ITERATIONS
    from ..system.serialize import system_from_dict

    system = system_from_dict(payload["system"])
    ex = explain_system(system, max_iterations=payload.get(
        "max_iterations", DEFAULT_MAX_ITERATIONS))
    return ex.to_dict()


# ----------------------------------------------------------------------
# job construction (runs on the event loop: cheap, no analysis)
# ----------------------------------------------------------------------
def build_job(kind: str, payload: Dict[str, Any]) -> Job:
    """Translate a request payload into a content-addressed job.

    ``analyze`` requests default to ``on_failure="degrade"`` — the
    daemon must keep serving when one request's system diverges — but a
    client may pass ``on_failure="raise"`` explicitly to get strict
    semantics (the failure then comes back as a failed job result, not
    an exception).

    An ``incremental`` request key (a group name, or ``true`` for the
    shared default group) becomes a job *option*: the analysis reuses
    unchanged local results from earlier requests of the same group.
    Options never enter the job key, so incremental and cold requests
    share one cache entry — backed by the memo layer's bit-identity
    guarantee.
    """
    from ..system.propagation import DEFAULT_MAX_ITERATIONS

    if kind == "analyze":
        job_payload: Dict[str, Any] = {
            "system": resolve_system_dict(payload),
            "max_iterations": payload.get("max_iterations",
                                          DEFAULT_MAX_ITERATIONS),
            "on_failure": payload.get("on_failure", "degrade"),
        }
        if job_payload["on_failure"] not in ("raise", "degrade"):
            raise BadRequest("on_failure must be 'raise' or 'degrade'")
        options: Dict[str, Any] = {}
        incremental = payload.get("incremental")
        if incremental:
            options["incremental"] = ("serve"
                                      if incremental is True
                                      else str(incremental))
        return Job("analyze", job_payload,
                   label=payload.get("label", payload.get("example", "")),
                   options=options)
    if kind == "explain":
        job_payload = {
            "system": resolve_system_dict(payload),
            "max_iterations": payload.get("max_iterations",
                                          DEFAULT_MAX_ITERATIONS),
        }
        return Job("explain", job_payload,
                   label=payload.get("label", payload.get("example", "")))
    if kind == "job":
        raw_kind = payload.get("kind")
        if raw_kind not in job_kinds():
            raise BadRequest(
                f"unknown job kind {raw_kind!r} "
                f"(known: {', '.join(job_kinds())})")
        raw_payload = payload.get("payload")
        if not isinstance(raw_payload, dict):
            raise BadRequest("'payload' must be a dict")
        return Job(raw_kind, raw_payload,
                   label=payload.get("label", ""),
                   timeout=payload.get("timeout"))
    raise BadRequest(f"unhandled request kind {kind!r}")


# ----------------------------------------------------------------------
# worker-side execution (dispatcher threads)
# ----------------------------------------------------------------------
def run_unary(runner: BatchRunner, job: Job,
              profile: bool = False,
              profile_hz: int = 100) -> Dict[str, Any]:
    """Run one job through the memoising runner; response body + cache
    accounting.  The runner checkpoints the result into the shared
    store before we return, so a crash after this point loses nothing.

    With *profile* the wall-clock sampling profiler watches this
    worker thread for the duration of the job and the response body
    gains a ``"profile"`` report (collapsed stacks + hot table).
    """
    profiler = None
    if profile:
        from ..obs.profile import SamplingProfiler
        profiler = SamplingProfiler(
            hz=profile_hz, threads={threading.get_ident()})
        profiler.start()
    try:
        report = runner.run([job])
    finally:
        if profiler is not None:
            profiler.stop()
    result = report.results[job.key]
    body: Dict[str, Any] = {
        "key": result.key,
        "kind": result.kind,
        "status": result.status,
        "cached": job.key in report.cached,
        "data": result.data,
        "duration": result.duration,
        "attempts": result.attempts,
    }
    if result.error:
        body["error"] = result.error
    if profiler is not None:
        body["profile"] = profiler.to_dict()
    return body


class RequestSink:
    """Per-request event-bus sink for streaming sweep progress.

    The bus is process-global and every dispatcher thread publishes
    into it, so a per-request stream must filter.  Events are
    dispatched synchronously on the publishing thread
    (:meth:`repro.obs.bus.EventBus.publish`), which makes the thread
    identity of the *publisher* the request identity: the sink is
    bound to the dispatcher thread running this request's sweep and
    forwards only events published from it.

    Forwarding crosses back onto the event loop via
    ``loop.call_soon_threadsafe`` into the request's ``asyncio.Queue``
    — the HTTP handler drains that queue into NDJSON lines.
    """

    interests = frozenset(
        {"sweep", "job", "job_retry", "guard", "serve_state"})

    def __init__(self, loop, stream: "Any"):
        self._loop = loop
        self._stream = stream
        self._thread: Optional[int] = None
        self.forwarded = 0

    def bind_current_thread(self) -> None:
        self._thread = threading.get_ident()

    def handle(self, event: Dict[str, Any]) -> None:
        if self._thread != threading.get_ident():
            return
        self.forwarded += 1
        self._loop.call_soon_threadsafe(
            self._stream.put_nowait, dict(event))


def run_sweep(runner_factory: Callable[[str], BatchRunner],
              payload: Dict[str, Any],
              sink: Optional[RequestSink] = None) -> Dict[str, Any]:
    """Run a named design-space sweep; returns the final summary body.

    *runner_factory* builds a runner bound to the request's cache
    directory (sweeps use per-space stores, like the batch CLI, so a
    sweep and a direct ``python -m repro batch`` run share hits).
    """
    from ..obs.bus import BUS

    name = payload.get("space")
    if name not in NAMED_SPACES:
        raise BadRequest(
            f"unknown space {name!r} "
            f"(known: {', '.join(sorted(NAMED_SPACES))})")
    space = NAMED_SPACES[name]()
    if payload.get("timeout") is not None:
        space.timeout = float(payload["timeout"])
    sample = payload.get("sample")
    points = (space.sample(int(sample), seed=int(payload.get("seed", 0)))
              if sample is not None else list(space.grid()))

    runner = runner_factory(name)
    if sink is not None:
        sink.bind_current_thread()
        BUS.subscribe(sink)
    try:
        sweep = space.run(runner, points=points)
    finally:
        if sink is not None:
            BUS.unsubscribe(sink)
    report = sweep.report
    return {
        "space": space.name,
        "points": len(points),
        "cached": len(report.cached),
        "executed": len(report.executed),
        "failed": len(report.failed),
        "poisoned": len(report.poisoned),
        "cache_hit_rate": report.cache_hit_rate,
        "wall": report.wall,
        "table": sweep.table(),
        "summary": report.summary(),
    }


__all__ = [
    "BadRequest",
    "EXAMPLES",
    "RequestSink",
    "build_job",
    "example_names",
    "mint_trace_context",
    "resolve_system_dict",
    "run_sweep",
    "run_unary",
    "space_names",
]
