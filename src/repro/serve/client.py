"""Typed client for the ``repro.serve`` daemon (stdlib ``http.client``).

Synchronous on purpose: the daemon is the async side; callers of the
client are tests, the ``python -m repro submit`` CLI, benchmarks, and
scripts — all of which want a plain blocking call.  One connection per
request matches the server's ``Connection: close`` discipline.

::

    client = ServeClient(port=8787)
    client.wait_healthy()
    resp = client.analyze(example="rox08")
    resp.data["worst_wcrt"]

    final = client.sweep("quickstart", sample=4,
                         on_event=lambda e: print(e["type"]))

Failures surface as :class:`ServeError` (transport / malformed
response) or :class:`RequestRejected` (a 4xx/5xx JSON answer — carries
the parsed body, the HTTP status, and ``retry_after`` when the daemon
asked for backoff).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..system.model import System
from ..system.serialize import system_to_dict

DEFAULT_TIMEOUT = 120.0


class ServeError(Exception):
    """Transport-level failure talking to the daemon."""


class RequestRejected(ServeError):
    """The daemon answered with a non-200 JSON body."""

    def __init__(self, status: int, body: Dict[str, Any],
                 request_id: str = ""):
        detail = body.get("detail") or body.get("error") or "rejected"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body
        self.retry_after: Optional[float] = body.get("retry_after")
        self.job_key: str = body.get("job_key", "")
        self.request_id = request_id


@dataclass
class ServeResponse:
    """A unary response: job status + content-addressed identity."""

    key: str
    kind: str
    status: str
    cached: bool
    data: Dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    attempts: int = 1
    error: str = ""
    http_status: int = 200
    #: Correlation id echoed by the daemon (``X-Repro-Request-Id``).
    request_id: str = ""
    #: Sampling-profiler report when the request asked for one
    #: (``profile=True``), else None.
    profile: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_body(cls, body: Dict[str, Any],
                  http_status: int = 200,
                  request_id: str = "") -> "ServeResponse":
        return cls(
            key=body.get("key", ""), kind=body.get("kind", ""),
            status=body.get("status", ""),
            cached=bool(body.get("cached")),
            data=dict(body.get("data", {})),
            duration=body.get("duration", 0.0),
            attempts=body.get("attempts", 1),
            error=body.get("error", ""), http_status=http_status,
            request_id=request_id or body.get("request_id", ""),
            profile=body.get("profile"))


class ServeClient:
    """Blocking JSON client for one daemon instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 request_id: Optional[str] = None
                 ) -> Tuple[Dict[str, Any], str]:
        """One round-trip; returns ``(parsed body, echoed request id)``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            if request_id:
                headers["X-Repro-Request-Id"] = request_id
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"{method} {path} on {self.host}:{self.port} "
                    f"failed: {exc}") from exc
            echoed = response.getheader("X-Repro-Request-Id", "") or ""
            try:
                parsed = json.loads(raw) if raw else {}
            except ValueError as exc:
                raise ServeError(
                    f"non-JSON response ({response.status}): "
                    f"{raw[:200]!r}") from exc
            if response.status != 200:
                raise RequestRejected(response.status, parsed,
                                      request_id=echoed)
            return parsed, echoed
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        body, _ = self._request("GET", "/healthz")
        return body

    def metrics_text(self) -> str:
        """Raw OpenMetrics scrape of ``GET /metrics`` (text, not JSON)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(f"GET /metrics failed: {exc}") from exc
            if response.status != 200:
                raise ServeError(
                    f"GET /metrics answered {response.status}")
            return raw.decode("utf-8")
        finally:
            conn.close()

    def wait_healthy(self, timeout: float = 30.0,
                     interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``/healthz`` until the daemon reports SERVING."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                health = self.health()
                if health.get("state") == "serving":
                    return health
            except ServeError as exc:
                last = exc
            time.sleep(interval)
        raise ServeError(
            f"daemon on {self.host}:{self.port} not healthy after "
            f"{timeout}s" + (f" (last error: {last})" if last else ""))

    def _payload(self, system: Optional[System],
                 example: Optional[str],
                 **extra: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if system is not None:
            payload["system"] = system_to_dict(system)
        if example is not None:
            payload["example"] = example
        payload.update({k: v for k, v in extra.items() if v is not None})
        return payload

    def analyze(self, system: Optional[System] = None, *,
                example: Optional[str] = None,
                max_iterations: Optional[int] = None,
                on_failure: Optional[str] = None,
                priority: Optional[int] = None,
                deadline: Optional[float] = None,
                profile: bool = False,
                request_id: Optional[str] = None) -> ServeResponse:
        body, rid = self._request("POST", "/v1/analyze", self._payload(
            system, example, max_iterations=max_iterations,
            on_failure=on_failure, priority=priority, deadline=deadline,
            profile=profile or None), request_id=request_id)
        return ServeResponse.from_body(body, request_id=rid)

    def explain(self, system: Optional[System] = None, *,
                example: Optional[str] = None,
                max_iterations: Optional[int] = None,
                priority: Optional[int] = None,
                deadline: Optional[float] = None,
                request_id: Optional[str] = None) -> ServeResponse:
        body, rid = self._request("POST", "/v1/explain", self._payload(
            system, example, max_iterations=max_iterations,
            priority=priority, deadline=deadline),
            request_id=request_id)
        return ServeResponse.from_body(body, request_id=rid)

    def job(self, kind: str, payload: Dict[str, Any], *,
            label: str = "", timeout: Optional[float] = None,
            priority: Optional[int] = None,
            deadline: Optional[float] = None,
            request_id: Optional[str] = None) -> ServeResponse:
        request: Dict[str, Any] = {"kind": kind, "payload": payload,
                                   "label": label}
        for name, value in (("timeout", timeout),
                            ("priority", priority),
                            ("deadline", deadline)):
            if value is not None:
                request[name] = value
        body, rid = self._request("POST", "/v1/job", request,
                                  request_id=request_id)
        return ServeResponse.from_body(body, request_id=rid)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def sweep_events(self, space: str, *,
                     sample: Optional[int] = None, seed: int = 0,
                     timeout: Optional[float] = None,
                     priority: Optional[int] = None
                     ) -> Iterator[Dict[str, Any]]:
        """Stream a sweep's NDJSON events, final ``result`` line last.

        The connection stays open for the duration of the sweep; events
        are yielded as parsed dicts.  A non-200 upfront rejection
        (backpressure, draining) raises :class:`RequestRejected`.
        """
        payload: Dict[str, Any] = {"space": space, "seed": seed}
        if sample is not None:
            payload["sample"] = sample
        if timeout is not None:
            payload["timeout"] = timeout
        if priority is not None:
            payload["priority"] = priority
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            try:
                conn.request("POST", "/v1/sweep",
                             body=json.dumps(payload).encode("utf-8"),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(f"sweep submit failed: {exc}") from exc
            if response.status != 200:
                raw = response.read()
                try:
                    body = json.loads(raw)
                except ValueError:
                    body = {"error": raw.decode("utf-8", "replace")}
                raise RequestRejected(response.status, body)
            for raw_line in response:
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue  # torn line on abrupt daemon death
        finally:
            conn.close()

    def sweep(self, space: str, *,
              sample: Optional[int] = None, seed: int = 0,
              timeout: Optional[float] = None,
              priority: Optional[int] = None,
              on_event: Optional[Callable[[Dict[str, Any]], None]] = None
              ) -> Dict[str, Any]:
        """Run a sweep, forwarding progress events to *on_event*;
        returns the final ``result`` line.  Raises :class:`ServeError`
        if the stream ends without one, :class:`RequestRejected` if the
        daemon answered the sweep with an error line."""
        final: Optional[Dict[str, Any]] = None
        for event in self.sweep_events(space, sample=sample, seed=seed,
                                       timeout=timeout,
                                       priority=priority):
            if event.get("type") in ("result", "error"):
                final = event
                continue
            if on_event is not None:
                on_event(event)
        if final is None:
            raise ServeError("sweep stream ended without a result line")
        if final.get("type") == "error":
            raise RequestRejected(final.get("http_status", 500), final)
        return final


__all__ = [
    "DEFAULT_TIMEOUT",
    "RequestRejected",
    "ServeClient",
    "ServeError",
    "ServeResponse",
]
