"""Bounded priority queue between the HTTP layer and the dispatchers.

Requests accepted by the HTTP handlers become :class:`WorkItem` entries
ordered by ``(priority, seq)`` — lower priority number first, FIFO
within a priority class — in a heap bounded by ``capacity``.  The
queue is the daemon's backpressure valve and its drain point:

* a full queue raises :class:`QueueFull` carrying a ``retry_after``
  estimate, which the HTTP layer turns into ``429 Too Many Requests``
  with a ``Retry-After`` header;
* a closed queue (DRAINING) raises :class:`QueueClosed` → 503;
* :meth:`RequestQueue.drain` flushes everything queued-but-unstarted
  so each waiter can be answered with 503 plus its resumable job key.

Per-request *deadlines* bound queue wait: :meth:`WorkItem.expired`
is checked by the dispatcher at pop time, so a request that sat in the
queue past its budget is answered ``504`` without burning a worker on
an answer nobody is waiting for anymore.

The queue is asyncio-native: ``submit``/``drain`` are plain methods
called on the event-loop thread, ``pop`` is a coroutine dispatchers
await.  Nothing here is thread-safe by design — all entry points run
on the loop; worker threads only ever touch the item they were handed.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .._errors import ModelError

#: Default priority for requests that do not ask for one (lower runs
#: sooner; think Unix nice).
DEFAULT_PRIORITY = 10


class QueueFull(Exception):
    """Queue at capacity — reject with 429 + Retry-After."""

    def __init__(self, depth: int, retry_after: float):
        super().__init__(f"request queue full ({depth} queued)")
        self.depth = depth
        self.retry_after = retry_after


class QueueClosed(Exception):
    """Queue closed for new work (daemon draining) — reject with 503."""


@dataclass(order=True)
class WorkItem:
    """One queued request: ordering key + everything the dispatcher
    and the waiting HTTP handler need.

    Only ``priority`` and ``seq`` participate in ordering.  ``future``
    is resolved exactly once — by the dispatcher (result or handler
    error), by deadline expiry, or by the drain flush.
    """

    priority: int
    seq: int
    kind: str = field(compare=False, default="")
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)
    #: Content-addressed job key when known at submit time (analyze /
    #: explain / job requests); the resumable handle a drained 503
    #: hands back.
    job_key: str = field(compare=False, default="")
    #: Absolute monotonic deadline for *starting* the work, or None.
    deadline: Optional[float] = field(compare=False, default=None)
    enqueued_at: float = field(compare=False,
                               default_factory=time.monotonic)
    future: "asyncio.Future" = field(compare=False, default=None)
    #: For streaming requests: the asyncio queue NDJSON events flow
    #: through (None for unary requests).
    stream: Optional["asyncio.Queue"] = field(compare=False, default=None)
    #: Correlation id minted at the HTTP edge; stamped onto spans, bus
    #: events, and the persisted result record.
    request_id: str = field(compare=False, default="")
    #: The request's root span (detached — started on the loop thread,
    #: finished wherever the request is resolved), or None.
    span: Optional[Any] = field(compare=False, default=None)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) \
            > self.deadline

    def queue_wait(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) \
            - self.enqueued_at


class RequestQueue:
    """Bounded priority queue with deadline expiry and drain flush."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ModelError(f"queue capacity must be >= 1, got "
                             f"{capacity}")
        self.capacity = capacity
        self._heap: List[WorkItem] = []
        self._seq = itertools.count()
        self._closed = False
        self._waiters: "List[asyncio.Future]" = []
        #: Rolling mean service time (seconds) fed by the dispatcher;
        #: used for the Retry-After estimate.
        self._service_mean = 0.05
        self._workers = 1

    # ------------------------------------------------------------------
    def configure_estimate(self, workers: int) -> None:
        self._workers = max(1, workers)

    def observe_service_time(self, seconds: float) -> None:
        """Exponential moving average of job service time."""
        if seconds > 0:
            self._service_mean += 0.2 * (seconds - self._service_mean)

    def retry_after(self) -> float:
        """Seconds after which a rejected client should retry: the
        estimated time to drain the current backlog."""
        backlog = len(self._heap) * self._service_mean / self._workers
        return max(1.0, round(backlog, 1))

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def oldest_wait(self, now: Optional[float] = None) -> float:
        """Queue wait of the longest-waiting item (seconds; 0.0 when
        empty) — the queue-age gauge exposed at ``/metrics``."""
        if not self._heap:
            return 0.0
        if now is None:
            now = time.monotonic()
        return max(item.queue_wait(now) for item in self._heap)

    def submit(self, kind: str, payload: Dict[str, Any], *,
               priority: int = DEFAULT_PRIORITY,
               deadline: Optional[float] = None,
               job_key: str = "",
               stream: Optional["asyncio.Queue"] = None,
               request_id: str = "",
               span: Optional[Any] = None) -> WorkItem:
        """Enqueue a request; returns the item whose ``future`` the
        caller awaits.  *deadline* is relative seconds from now."""
        if self._closed:
            raise QueueClosed()
        if len(self._heap) >= self.capacity:
            raise QueueFull(len(self._heap), self.retry_after())
        item = WorkItem(
            priority=int(priority), seq=next(self._seq), kind=kind,
            payload=payload, job_key=job_key,
            deadline=(time.monotonic() + deadline
                      if deadline is not None else None),
            future=asyncio.get_running_loop().create_future(),
            stream=stream, request_id=request_id, span=span)
        heapq.heappush(self._heap, item)
        self._wake_one()
        return item

    async def pop(self) -> Optional[WorkItem]:
        """Next item by priority, or ``None`` once closed and empty."""
        while True:
            if self._heap:
                return heapq.heappop(self._heap)
            if self._closed:
                return None
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)

    def close(self) -> None:
        """Refuse new submissions; wake dispatchers so idle ones exit."""
        self._closed = True
        self._wake_all()

    def drain(self) -> List[WorkItem]:
        """Close and flush: every queued-but-unstarted item is removed
        and returned so the server can answer its waiter with 503 + the
        resumable job key."""
        self.close()
        flushed = sorted(self._heap)
        self._heap.clear()
        return flushed

    # ------------------------------------------------------------------
    def _wake_one(self) -> None:
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
                break

    def _wake_all(self) -> None:
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)

    def __len__(self) -> int:
        return len(self._heap)
