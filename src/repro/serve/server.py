"""``repro.serve`` daemon: asyncio HTTP/1.1 + JSON over the batch engine.

One process, one event loop, ``K`` dispatcher tasks backed by ``K``
worker threads.  The HTTP layer (stdlib only — ``asyncio.start_server``
plus a minimal HTTP/1.1 request parser) accepts JSON requests, drops
them into the bounded priority :class:`~repro.serve.queue.RequestQueue`
and awaits the per-request future; dispatchers drain the queue into the
existing :class:`~repro.batch.executor.BatchRunner` running on worker
threads, so the content-addressed :class:`~repro.batch.store.
ResultStore` and the process-global compiled-curve LRU act as shared
hot caches across *all* clients of the daemon.

Endpoints (see ``docs/serve.md`` for the full protocol):

====================  ====================================================
``GET  /healthz``     state machine, queue depth, cache hit rates,
                      ``serve.*`` counters, :class:`LiveAggregator`
                      rollups
``POST /v1/analyze``  analyze a ``system`` dict or built-in ``example``
                      (degrades instead of failing, by default)
``POST /v1/explain``  WCRT blame + lineage, content-addressed & cached
``POST /v1/job``      any registered batch job kind, verbatim
``POST /v1/sweep``    run a named design space; **streams NDJSON**
                      progress events (bus-subscribed per-request sink)
                      followed by one ``result`` line
====================  ====================================================

Backpressure: a full queue answers ``429`` with a ``Retry-After``
estimate.  Deadlines: a request carrying ``deadline`` seconds that is
still queued when the budget lapses is answered ``504``.  Shutdown:
SIGTERM/SIGINT moves the state machine ``SERVING → DRAINING`` —
in-flight jobs finish and checkpoint into the store, queued-but-
unstarted requests get ``503`` with their resumable job key, then the
daemon stops.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .. import obs as _obs
from .._errors import ModelError
from ..batch.executor import BatchRunner, SerialBackend
from ..batch.store import ResultStore
from ..obs import context as _context
from ..obs import openmetrics as _openmetrics
from ..obs.aggregate import LiveAggregator
from ..obs.bus import BUS as _BUS
from . import handlers
from .handlers import BadRequest, RequestSink
from .queue import (
    DEFAULT_PRIORITY,
    QueueClosed,
    QueueFull,
    RequestQueue,
    WorkItem,
)
from .state import (
    DRAINING,
    SERVING,
    STARTING,
    STOPPED,
    ServeStats,
    ServiceStateMachine,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_SIZE = 64
DEFAULT_CACHE_ROOT = ".repro-serve"

#: Upper bound on request body size (a serialised system is ~kilobytes;
#: this is a guard against garbage, not a tuning knob).
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Sentinel closing a per-request NDJSON stream.
_STREAM_END = object()


class _HttpError(Exception):
    """Internal: carries a status + JSON body up to the writer."""

    def __init__(self, status: int, body: Dict[str, Any],
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(body.get("error", ""))
        self.status = status
        self.body = body
        self.headers = headers or {}


class ServeDaemon:
    """The analysis-as-a-service daemon.

    Lifecycle: :meth:`start` binds the socket and moves the state
    machine to SERVING; :meth:`serve_forever` parks until STOPPED;
    :meth:`begin_drain` (signal handlers call this) starts the graceful
    shutdown.  :meth:`run` wires all three plus signal handlers into a
    blocking call for the CLI; tests use :func:`daemon_in_thread`.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 workers: int = DEFAULT_WORKERS,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 cache_dir: Optional[str] = None,
                 retry: Optional[Any] = None,
                 default_deadline: Optional[float] = None,
                 quiet: bool = True):
        if workers < 1:
            raise ModelError(f"need at least one worker, got {workers}")
        self.host = host
        self.requested_port = port
        self.workers = workers
        self.cache_root = Path(cache_dir or DEFAULT_CACHE_ROOT)
        self.default_deadline = default_deadline
        self.quiet = quiet
        self.machine = ServiceStateMachine()
        self.stats = ServeStats()
        self.queue = RequestQueue(queue_size)
        self.queue.configure_estimate(workers)
        self.aggregator = LiveAggregator()
        self.retry = retry if retry is not None else _default_retry()
        self.started_at = time.monotonic()
        self.store: Optional[ResultStore] = None
        self._sweep_stores: Dict[str, ResultStore] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatchers: list = []
        self._in_flight = 0
        self._stopped = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`; a requested
        port of 0 binds an ephemeral one)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.requested_port

    @property
    def state(self) -> str:
        return self.machine.state

    async def start(self) -> None:
        """Open the store, spawn dispatchers, bind the socket."""
        self._loop = asyncio.get_running_loop()
        _obs.configure(enabled=True)
        _BUS.subscribe(self.aggregator)
        self.store = ResultStore(self.cache_root / "requests")
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-serve-worker")
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop(i))
            for i in range(self.workers)]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port)
        self.machine.to(SERVING)
        self._log(f"serving on {self.host}:{self.port} "
                  f"({self.workers} worker(s), queue "
                  f"{self.queue.capacity})")

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def begin_drain(self) -> None:
        """Start graceful shutdown; safe to call from signal handlers
        and from other threads, idempotent."""
        if self._loop is None or self.machine.state in (DRAINING, STOPPED):
            return
        self._loop.call_soon_threadsafe(self._begin_drain_on_loop)

    def _begin_drain_on_loop(self) -> None:
        if self.machine.state != SERVING or self._drain_task is not None:
            return
        self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        self._log("draining: refusing new work, flushing the queue, "
                  "waiting for in-flight jobs")
        self.machine.to(DRAINING)
        # Stop accepting new connections first.
        if self._server is not None:
            self._server.close()
        # Flush queued-but-unstarted requests: 503 + resumable job key.
        for item in self.queue.drain():
            self._resolve(item, 503, {
                "error": "draining",
                "detail": "daemon is shutting down; resubmit later — "
                          "completed work is checkpointed",
                "job_key": item.job_key,
            })
            self.stats.dispose("drained")
        # Dispatchers exit once the (closed) queue is empty; in-flight
        # jobs run to completion and checkpoint into the store.
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers,
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._server is not None:
            await self._server.wait_closed()
        if self.store is not None:
            self.store.close()
        for store in self._sweep_stores.values():
            store.close()
        _BUS.unsubscribe(self.aggregator)
        self.machine.to(STOPPED)
        self._log("stopped")
        self._stopped.set()

    async def aclose(self) -> None:
        """Drain and wait until STOPPED (test/bench convenience)."""
        self._begin_drain_on_loop()
        await self.serve_forever()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _runner(self) -> BatchRunner:
        """A per-request runner over the shared request store.  Serial
        backend: concurrency comes from the dispatcher threads, and the
        store/LRU sharing happens at the store layer."""
        return BatchRunner(store=self.store, backend=SerialBackend(),
                           retry=self.retry)

    def _sweep_runner(self, space: str) -> BatchRunner:
        """Sweeps use one store per space (same layout as the batch
        CLI cache) so daemon sweeps and shell sweeps share hits."""
        store = self._sweep_stores.get(space)
        if store is None:
            store = ResultStore(self.cache_root / "sweeps" / space)
            self._sweep_stores[space] = store
        return BatchRunner(store=store, backend=SerialBackend(),
                           retry=self.retry)

    async def _dispatch_loop(self, worker_id: int) -> None:
        while True:
            item = await self.queue.pop()
            if item is None:
                return
            now = time.monotonic()
            self._observe_dequeue(item, now)
            if item.expired(now):
                self._resolve(item, 504, {
                    "error": "deadline_exceeded",
                    "detail": f"request waited "
                              f"{item.queue_wait(now):.3f}s in queue, "
                              f"past its deadline",
                    "job_key": item.job_key,
                })
                self.stats.dispose("expired")
                continue
            self._in_flight += 1
            t0 = time.perf_counter()
            try:
                body = await self._execute(item)
            except BadRequest as exc:
                self._resolve(item, 400, {"error": "bad_request",
                                          "detail": str(exc)})
                self.stats.dispose("errors")
            except Exception as exc:  # handler crash: one 500, keep serving
                self._resolve(item, 500, {
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}"})
                self.stats.dispose("errors")
            else:
                latency = time.perf_counter() - t0
                self.queue.observe_service_time(latency)
                ok = body.get("status", "ok") == "ok"
                self.stats.dispose("ok" if ok else "failed", latency)
                if _obs.enabled:
                    _obs.metrics().histogram(_openmetrics.labeled(
                        "serve.endpoint_seconds",
                        endpoint=item.kind)).observe(latency)
                self._resolve(item, 200, body)
            finally:
                self._in_flight -= 1

    def _observe_dequeue(self, item: WorkItem, now: float) -> None:
        """Queue-depth gauge + queue-wait histogram/span at pop time."""
        if not _obs.enabled:
            return
        wait = item.queue_wait(now)
        registry = _obs.metrics()
        registry.gauge("serve.queue_depth").set(self.queue.depth)
        registry.histogram("serve.queue_wait_seconds").observe(wait)
        if item.span is not None:
            # A child span covering exactly the time spent queued —
            # back-dated to the root's start so the Perfetto lane shows
            # the wait as a contiguous region under the request.
            qspan = _obs.get_tracer().start_detached(
                "serve.queue_wait", parent_id=item.span.span_id,
                ctx=_context.TraceContext(request_id=item.request_id),
                seconds=wait)
            qspan.start = item.span.start
            qspan.finish()

    async def _execute(self, item: WorkItem) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        if item.kind == "sweep":
            sink = (RequestSink(loop, item.stream)
                    if item.stream is not None else None)
            body = await loop.run_in_executor(
                self._executor,
                self._in_request_context(
                    item,
                    lambda: handlers.run_sweep(self._sweep_runner,
                                               item.payload, sink)))
            body["status"] = "ok"
            body["type"] = "result"
            return body
        job = handlers.build_job(item.kind, item.payload)
        profile = bool(item.payload.get("profile"))
        body = await loop.run_in_executor(
            self._executor,
            self._in_request_context(
                item,
                lambda: handlers.run_unary(self._runner(), job,
                                           profile=profile)))
        self.stats.cache(int(bool(body.get("cached"))),
                         int(not body.get("cached")))
        if item.request_id:
            body.setdefault("request_id", item.request_id)
        return body

    def _in_request_context(self, item: WorkItem, fn):
        """Wrap *fn* so it runs on the worker thread *inside* the
        request's trace context.

        ``loop.run_in_executor`` does not propagate contextvars (only
        ``asyncio.to_thread`` copies the context), so the context rides
        on the :class:`WorkItem` and is activated explicitly here —
        this is what stamps the request id onto every span, bus event,
        and stored result the job produces.
        """
        if not item.request_id:
            return fn
        ctx = _context.TraceContext(
            request_id=item.request_id,
            root_span_id=(item.span.span_id
                          if item.span is not None else None),
            endpoint=item.kind)

        def wrapped():
            token = _context.activate(ctx)
            span = (_obs.get_tracer().start("serve.execute",
                                            endpoint=item.kind)
                    if _obs.enabled else None)
            try:
                return fn()
            finally:
                if span is not None:
                    span.finish()
                _context.deactivate(token)

        return wrapped

    def _resolve(self, item: WorkItem, status: int,
                 body: Dict[str, Any]) -> None:
        if item.span is not None:
            self._finish_root_span(item.span, status,
                                   body.get("error"))
            item.span = None
        if item.stream is not None:
            # Streaming requests learn their fate through the stream.
            item.stream.put_nowait((status, body))
            item.stream.put_nowait(_STREAM_END)
        if item.future is not None and not item.future.done():
            item.future.set_result((status, body))

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _HttpError as exc:
                await self._write_json(writer, exc.status, exc.body,
                                       exc.headers)
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError, asyncio.TimeoutError):
                return
            try:
                await self._route(method, path, body, writer, headers)
            except _HttpError as exc:
                await self._write_json(writer, exc.status, exc.body,
                                       exc.headers)
            except Exception as exc:  # defensive: never kill the loop
                await self._write_json(writer, 500, {
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict[str, str]]:
        raw = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        if len(raw) > MAX_HEADER_BYTES:
            raise _HttpError(400, {"error": "bad_request",
                                   "detail": "headers too large"})
        try:
            head = raw.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, {"error": "bad_request",
                                   "detail": "malformed request line"})
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> Dict[str, Any]:
        length = int(headers.get("content-length", "0") or "0")
        if length == 0:
            return {}
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, {"error": "payload_too_large",
                                   "detail": f"body of {length} bytes "
                                             f"exceeds {MAX_BODY_BYTES}"})
        raw = await asyncio.wait_for(reader.readexactly(length),
                                     timeout=60.0)
        try:
            payload = json.loads(raw)
        except ValueError:
            raise _HttpError(400, {"error": "bad_request",
                                   "detail": "body is not valid JSON"})
        if not isinstance(payload, dict):
            raise _HttpError(400, {"error": "bad_request",
                                   "detail": "body must be a JSON object"})
        return payload

    async def _route(self, method: str, path: str,
                     payload: Dict[str, Any],
                     writer: asyncio.StreamWriter,
                     headers: Optional[Dict[str, str]] = None) -> None:
        headers = headers or {}
        path, _, query = path.partition("?")
        params = _parse_query(query)
        ctx = handlers.mint_trace_context(
            headers.get("x-repro-request-id", ""))
        rid_headers = {"X-Repro-Request-Id": ctx.request_id}
        try:
            if path == "/healthz":
                if method != "GET":
                    raise _HttpError(405, {"error": "method_not_allowed"})
                await self._write_json(writer, 200, self.health(),
                                       rid_headers)
                return
            if path == "/metrics":
                if method != "GET":
                    raise _HttpError(405, {"error": "method_not_allowed"})
                await self._write_text(writer, 200, self.metrics_text(),
                                       _openmetrics.CONTENT_TYPE,
                                       rid_headers)
                return
            routes = {"/v1/analyze": "analyze", "/v1/explain": "explain",
                      "/v1/job": "job", "/v1/sweep": "sweep"}
            kind = routes.get(path)
            if kind is None:
                raise _HttpError(404, {
                    "error": "not_found",
                    "detail": f"no route {path!r} (have /healthz, "
                              f"/metrics, {', '.join(sorted(routes))})"})
            if method != "POST":
                raise _HttpError(405, {"error": "method_not_allowed"})
            if _truthy(params.get("profile")) and kind != "sweep":
                payload = dict(payload, profile=True)
            if kind == "sweep":
                await self._handle_sweep(payload, writer, ctx.request_id)
                return
            item = self._enqueue(kind, payload,
                                 request_id=ctx.request_id)
            status, body = await item.future
            await self._write_json(writer, status, body, rid_headers)
        except _HttpError as exc:
            # Every response — including rejections — echoes the id.
            exc.headers = {**rid_headers, **exc.headers}
            raise

    def _enqueue(self, kind: str, payload: Dict[str, Any],
                 stream: Optional[asyncio.Queue] = None,
                 request_id: str = "") -> WorkItem:
        self.stats.request()
        if not self.machine.accepting:
            self.stats.dispose("drained"
                               if self.machine.state == DRAINING
                               else "errors")
            raise _HttpError(503, {
                "error": "unavailable",
                "detail": f"daemon is {self.machine.state}, "
                          f"not accepting work"})
        # Compute the content-addressed key up front where possible: it
        # is the resumable handle a drained/expired answer carries.
        job_key = ""
        if kind == "sweep":
            job_key = str(payload.get("space") or "")
        if kind in ("analyze", "explain", "job"):
            try:
                job_key = handlers.build_job(kind, payload).key
            except BadRequest as exc:
                self.stats.dispose("errors")
                raise _HttpError(400, {"error": "bad_request",
                                       "detail": str(exc)})
        deadline = payload.get("deadline", self.default_deadline)
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                self.stats.dispose("errors")
                raise _HttpError(400, {"error": "bad_request",
                                       "detail": "deadline must be "
                                                 "seconds (number)"})
        # Root span of the request's trace tree: started here on the
        # loop thread, finished by whoever resolves the item (detached,
        # so it never pollutes any thread's span stack).
        span = None
        if _obs.enabled and request_id:
            span = _obs.get_tracer().start_detached(
                "serve.request",
                ctx=_context.TraceContext(request_id=request_id,
                                          endpoint=kind),
                endpoint=kind, job_key=job_key)
        try:
            item = self.queue.submit(
                kind, payload,
                priority=int(payload.get("priority", DEFAULT_PRIORITY)),
                deadline=deadline, job_key=job_key, stream=stream,
                request_id=request_id, span=span)
        except QueueFull as exc:
            self.stats.dispose("rejected")
            self._finish_root_span(span, 429, "backpressure")
            raise _HttpError(429, {
                "error": "backpressure",
                "detail": f"queue full ({exc.depth} waiting); retry "
                          f"after {exc.retry_after:g}s",
                "retry_after": exc.retry_after,
            }, headers={"Retry-After": f"{exc.retry_after:g}"})
        except QueueClosed:
            self.stats.dispose("drained")
            self._finish_root_span(span, 503, "draining")
            raise _HttpError(503, {"error": "draining",
                                   "detail": "daemon is draining",
                                   "job_key": job_key})
        if _obs.enabled:
            _obs.metrics().gauge("serve.queue_depth").set(
                self.queue.depth)
        return item

    @staticmethod
    def _finish_root_span(span: Optional[Any], status: int,
                          error: Optional[str] = None) -> None:
        if span is None:
            return
        span.set(http_status=status)
        if status >= 400:
            span.status = "error"
            span.error = error or f"http {status}"
        span.finish()

    async def _handle_sweep(self, payload: Dict[str, Any],
                            writer: asyncio.StreamWriter,
                            request_id: str = "") -> None:
        """Streaming response: NDJSON progress events, then the final
        ``result`` (or error) line, then EOF."""
        stream: asyncio.Queue = asyncio.Queue()
        self._enqueue("sweep", payload, stream=stream,
                      request_id=request_id)
        head = {"Content-Type": "application/x-ndjson",
                "Connection": "close"}
        if request_id:
            head["X-Repro-Request-Id"] = request_id
        await self._write_head(writer, 200, head)
        final: Optional[Tuple[int, Dict[str, Any]]] = None
        while True:
            event = await stream.get()
            if event is _STREAM_END:
                break
            if isinstance(event, tuple):
                final = event
                continue
            self.stats.streamed()
            await self._write_line(writer, event)
        if final is not None:
            status, body = final
            if status != 200 and "type" not in body:
                body = dict(body, type="error", http_status=status)
            await self._write_line(writer, body)

    # ------------------------------------------------------------------
    # metrics exposition
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: refresh scrape-time gauges, then
        render the whole registry as OpenMetrics text."""
        if _obs.enabled:
            registry = _obs.metrics()
            gauge = registry.gauge
            gauge("serve.queue_depth").set(self.queue.depth)
            gauge("serve.queue_oldest_wait_seconds").set(
                self.queue.oldest_wait())
            gauge("serve.in_flight").set(self._in_flight)
            gauge("serve.uptime_seconds").set(
                time.monotonic() - self.started_at)
            tracer = _obs.get_tracer()
            gauge("trace.spans_retained").set(len(tracer))
            gauge("trace.dropped_spans").set(tracer.dropped)
            gauge("bus.sinks").set(len(_BUS))
            gauge("bus.swallowed_sink_errors").set(_BUS.sink_errors)
            try:
                from ..eventmodels.compile import cache
                stats = cache().stats()
                total = stats["hits"] + stats["misses"]
                gauge("compile.cache_hit_rate").set(
                    stats["hits"] / total if total else 0.0)
                gauge("compile.cache_entries").set(stats["entries"])
            except Exception:
                pass
            try:
                from ..analysis.memo import memo_pool_stats
                pools = memo_pool_stats().values()
                tasks = sum(p["tasks_total"] for p in pools)
                reuses = sum(p["task_reuses"] for p in pools)
                gauge("memo.reuse_rate").set(
                    reuses / tasks if tasks else 0.0)
            except Exception:
                pass
        return _openmetrics.render_registry(_obs.metrics())

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        compile_stats: Dict[str, Any] = {}
        try:
            from ..eventmodels.compile import cache
            compile_stats = dict(cache().stats())
        except Exception:
            pass
        kernel_stats: Dict[str, Any] = {}
        incremental_stats: Dict[str, Any] = {}
        try:
            from ..analysis import kernels
            from ..analysis.memo import memo_pool_stats
            kernel_stats = kernels.stats()
            incremental_stats = memo_pool_stats()
        except Exception:
            pass
        return {
            "service": "repro.serve",
            "state": self.machine.state,
            "state_history": self.machine.history(),
            "uptime": time.monotonic() - self.started_at,
            "workers": self.workers,
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "in_flight": self._in_flight,
                "closed": self.queue.closed,
                "retry_after_estimate": self.queue.retry_after(),
            },
            "requests": self.stats.to_dict(),
            "store": {
                "dir": str(self.cache_root),
                "results": len(self.store)
                if self.store is not None else 0,
                "sweep_spaces": sorted(self._sweep_stores),
            },
            "compile_cache": compile_stats,
            "kernels": kernel_stats,
            "incremental": incremental_stats,
            "aggregate": self.aggregator.snapshot(),
            "trace": {
                "finished_spans": len(_obs.get_tracer()),
                "dropped_spans": _obs.get_tracer().dropped,
            },
            "bus": {"sinks": len(_BUS), "sink_errors": _BUS.sink_errors,
                    "sink_error_counts": _BUS.sink_error_counts()},
        }

    # ------------------------------------------------------------------
    # raw HTTP writing
    # ------------------------------------------------------------------
    async def _write_head(self, writer: asyncio.StreamWriter,
                          status: int, headers: Dict[str, str]) -> None:
        text = _STATUS_TEXT.get(status, "?")
        lines = [f"HTTP/1.1 {status} {text}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _write_line(self, writer: asyncio.StreamWriter,
                          obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj, sort_keys=True).encode("utf-8")
                     + b"\n")
        await writer.drain()

    async def _write_text(self, writer: asyncio.StreamWriter,
                          status: int, text: str, content_type: str,
                          extra_headers: Optional[Dict[str, str]] = None
                          ) -> None:
        payload = text.encode("utf-8")
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        await self._write_head(writer, status, headers)
        writer.write(payload)
        await writer.drain()

    async def _write_json(self, writer: asyncio.StreamWriter,
                          status: int, body: Dict[str, Any],
                          extra_headers: Optional[Dict[str, str]] = None
                          ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        await self._write_head(writer, status, headers)
        writer.write(payload)
        await writer.drain()

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro.serve] {message}", flush=True)

    # ------------------------------------------------------------------
    # blocking entry point (CLI)
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Start, install signal handlers, serve until drained."""
        import signal

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread / unsupported platform
            await self.serve_forever()

        asyncio.run(_main())
        return 0


def _parse_query(query: str) -> Dict[str, str]:
    """Minimal query-string parser (last value wins; no list support —
    the daemon's query surface is boolean flags like ``profile=1``)."""
    from urllib.parse import parse_qsl
    return dict(parse_qsl(query, keep_blank_values=True))


def _truthy(value: Optional[str]) -> bool:
    return str(value).strip().lower() in ("1", "true", "yes", "on")


def _default_retry():
    """The daemon's default retry policy: a couple of fast attempts for
    transient failures, deterministic errors poisoned immediately."""
    from ..resilience.retry import RetryPolicy
    return RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.5)


# ----------------------------------------------------------------------
# test/bench harness: daemon on a background thread
# ----------------------------------------------------------------------
class DaemonHandle:
    """A running daemon on a background thread (tests, benchmarks).

    The thread owns the event loop; :meth:`stop` triggers the same
    drain path a SIGTERM would and joins the thread.
    """

    def __init__(self, daemon: ServeDaemon, thread: threading.Thread):
        self.daemon = daemon
        self.thread = thread

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def state(self) -> str:
        return self.daemon.state

    def begin_drain(self) -> None:
        self.daemon.begin_drain()

    def stop(self, timeout: float = 30.0) -> None:
        self.daemon.begin_drain()
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("serve daemon failed to stop in time")


def daemon_in_thread(ready_timeout: float = 30.0,
                     **kwargs: Any) -> DaemonHandle:
    """Start a :class:`ServeDaemon` on a daemon thread and wait until
    it is SERVING; kwargs are forwarded to the constructor (pass
    ``port=0`` for an ephemeral port, the default here)."""
    kwargs.setdefault("port", 0)
    daemon = ServeDaemon(**kwargs)
    ready = threading.Event()
    failure: list = []

    def _run() -> None:
        async def _main() -> None:
            try:
                await daemon.start()
            except Exception as exc:  # pragma: no cover - startup bug
                failure.append(exc)
                ready.set()
                return
            ready.set()
            await daemon.serve_forever()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):  # pragma: no cover - hang guard
        raise RuntimeError("serve daemon failed to start in time")
    if failure:
        raise failure[0]
    return DaemonHandle(daemon, thread)
