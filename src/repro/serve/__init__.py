"""repro.serve — analysis-as-a-service daemon over the batch engine.

The subsystem that turns the library into a long-lived service::

    python -m repro serve --port 8787 --workers 4     # the daemon
    python -m repro submit rox08                      # a client

Pieces:

* :mod:`repro.serve.server` — :class:`ServeDaemon`: asyncio HTTP/1.1 +
  JSON (stdlib only), dispatcher worker threads over the
  :class:`~repro.batch.executor.BatchRunner`, NDJSON sweep streaming,
  ``/healthz``, graceful SIGTERM drain.
* :mod:`repro.serve.state` — explicit lifecycle state machine
  (STARTING → SERVING → DRAINING → STOPPED) and the request ledger.
* :mod:`repro.serve.queue` — bounded priority queue with per-request
  deadlines and 429 backpressure.
* :mod:`repro.serve.handlers` — request → content-addressed job
  translation (plus the cached ``explain`` job kind).
* :mod:`repro.serve.client` — typed blocking :class:`ServeClient`.
* :mod:`repro.serve.cli` — the ``serve`` and ``submit`` entry points.

Because every request flows through the shared
:class:`~repro.batch.store.ResultStore` and the process-global
compiled-curve LRU, the daemon's caches warm across *clients*: the
second identical request — from anyone — is a cache hit.
"""

from __future__ import annotations

from .client import RequestRejected, ServeClient, ServeError, ServeResponse
from .queue import QueueClosed, QueueFull, RequestQueue, WorkItem
from .server import DaemonHandle, ServeDaemon, daemon_in_thread
from .state import (
    DRAINING,
    SERVING,
    STARTING,
    STOPPED,
    ServeStats,
    ServiceStateMachine,
)

__all__ = [
    "DRAINING",
    "DaemonHandle",
    "QueueClosed",
    "QueueFull",
    "RequestQueue",
    "RequestRejected",
    "SERVING",
    "STARTING",
    "STOPPED",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeResponse",
    "ServeStats",
    "ServiceStateMachine",
    "WorkItem",
    "daemon_in_thread",
]
