"""Service state machine and request accounting for the daemon.

The daemon's lifecycle is an explicit, observable state machine::

    STARTING ──> SERVING ──> DRAINING ──> STOPPED
        │                                    ^
        └────────────────────────────────────┘

* ``STARTING`` — the store is opening, dispatchers are spawning; no
  socket is bound yet.
* ``SERVING`` — the steady state: requests are accepted, queued, and
  dispatched.
* ``DRAINING`` — entered on SIGTERM/SIGINT (or an explicit drain):
  new work is refused with 503, in-flight jobs run to completion and
  checkpoint into the store, queued-but-unstarted requests are flushed
  with 503 + their resumable job key.
* ``STOPPED`` — dispatchers joined, listener closed, store
  checkpointed.

Transitions are validated (the daemon can never un-drain), recorded
with timestamps, announced to registered listeners, and published on
the :mod:`repro.obs` event bus as ``serve_state`` events so a live
monitor or the NDJSON progress stream can show lifecycle changes.

:class:`ServeStats` is the thread-safe request ledger behind
``/healthz``: totals per disposition (ok / failed / rejected /
deadline-expired / drained), cache hits vs misses as reported by the
:class:`~repro.batch.executor.BatchRunner`, and a latency sum.  The
same increments are mirrored into ``serve.*`` counters of the global
metrics registry when observability is enabled, so the daemon shows up
in metric snapshots next to ``batch.*`` and ``propagation.*``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs as _obs
from .._errors import ModelError
from ..obs.bus import BUS as _BUS

#: Lifecycle states.
STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

#: Legal transitions; anything else is a programming error.
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    STARTING: (SERVING, STOPPED),
    SERVING: (DRAINING, STOPPED),
    DRAINING: (STOPPED,),
    STOPPED: (),
}


class ServiceStateMachine:
    """Validated, observable lifecycle state of one daemon instance."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._state = STARTING
        self._history: List[Tuple[str, float]] = [(STARTING, clock())]
        self._listeners: List[Callable[[str, str], None]] = []

    @property
    def state(self) -> str:
        return self._state

    def is_(self, state: str) -> bool:
        return self._state == state

    @property
    def accepting(self) -> bool:
        """Whether new requests may enter the queue."""
        return self._state == SERVING

    def history(self) -> List[Dict[str, Any]]:
        with self._lock:
            t0 = self._history[0][1]
            return [{"state": s, "at": t - t0} for s, t in self._history]

    def add_listener(self, fn: Callable[[str, str], None]) -> None:
        """Register ``fn(old_state, new_state)``; called inside ``to``."""
        self._listeners.append(fn)

    def to(self, new_state: str) -> str:
        """Transition into *new_state*, validating legality.

        Idempotent on the current state (``to(SERVING)`` while serving
        is a no-op) so signal handlers may fire more than once.
        """
        with self._lock:
            old = self._state
            if new_state == old:
                return old
            if new_state not in _TRANSITIONS.get(old, ()):
                raise ModelError(
                    f"illegal service transition {old} -> {new_state}")
            self._state = new_state
            self._history.append((new_state, self._clock()))
        for fn in self._listeners:
            fn(old, new_state)
        if _BUS.active:
            _BUS.publish({"type": "serve_state", "from": old,
                          "to": new_state})
        return new_state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServiceStateMachine {self._state}>"


class ServeStats:
    """Thread-safe request ledger feeding ``/healthz``.

    Counters follow the request's final disposition exactly once:

    * ``ok`` / ``failed`` — a response was computed (``failed`` covers
      engine failures the batch layer reported; the HTTP status is
      still 200 with the failure in the body, mirroring how a sweep
      records failed points without dying).
    * ``rejected`` — refused at the door with 429 (queue full).
    * ``expired`` — the per-request deadline lapsed while queued (504).
    * ``drained`` — flushed with 503 during DRAINING.
    * ``errors`` — malformed requests and handler crashes (4xx/5xx).

    ``cache_hits``/``cache_misses`` count *served analysis points*:
    a request whose job came back from the
    :class:`~repro.batch.store.ResultStore` (or whose sweep points
    did) increments hits; executed points increment misses.
    """

    _DISPOSITIONS = ("ok", "failed", "rejected", "expired", "drained",
                     "errors")

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.ok = 0
        self.failed = 0
        self.rejected = 0
        self.expired = 0
        self.drained = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.latency_sum = 0.0
        self.streamed_events = 0

    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
        if _obs.enabled:
            _obs.metrics().counter(f"serve.{name}").inc(amount)

    def request(self) -> None:
        self._bump("requests")

    def dispose(self, disposition: str, latency: Optional[float] = None
                ) -> None:
        if disposition not in self._DISPOSITIONS:
            raise ModelError(f"unknown disposition {disposition!r}")
        self._bump(disposition)
        if latency is not None:
            with self._lock:
                self.latency_sum += latency
            if _obs.enabled:
                _obs.metrics().histogram(
                    "serve.request_seconds").observe(latency)

    def cache(self, hits: int, misses: int) -> None:
        if hits:
            self._bump("cache_hits", hits)
        if misses:
            self._bump("cache_misses", misses)

    def streamed(self, events: int = 1) -> None:
        with self._lock:
            self.streamed_events += events

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "ok": self.ok,
                "failed": self.failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "drained": self.drained,
                "errors": self.errors,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": (self.cache_hits
                                   / (self.cache_hits + self.cache_misses)
                                   if self.cache_hits + self.cache_misses
                                   else 0.0),
                "latency_sum": self.latency_sum,
                "streamed_events": self.streamed_events,
            }
