"""Non-preemptive priority bus simulator (CAN arbitration).

Frames queue per identifier; whenever the bus goes idle, the queued frame
with the lowest identifier wins arbitration and transmits to completion.
Instances of the same frame transmit FIFO.

Hooks:

* ``on_start(frame, instance)`` — called when a frame instance wins the
  bus; the COM-layer simulator uses it to latch which signals the
  instance carries fresh (register snapshot at transmission start).
* ``on_complete(frame, instance, time)`` — called at end of transmission
  (frame visible at all receivers).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from .._errors import ModelError
from .engine import Simulator
from .measure import ResponseRecorder


@dataclass
class FrameInstance:
    """One queued transmission of a frame."""

    frame: str
    enqueued: float
    payload: dict = field(default_factory=dict)


class CanBusSim:
    """Event-driven CAN bus (static priority, non-preemptive)."""

    def __init__(self, sim: Simulator,
                 recorder: Optional[ResponseRecorder] = None,
                 name: str = "can",
                 require_unique_ids: bool = True):
        """``require_unique_ids=False`` relaxes the CAN rule that every
        frame needs a distinct identifier — useful when the bus stands
        in for a generic SPNP resource where equal priorities are legal
        (ties then break by registration order)."""
        self._sim = sim
        self._recorder = recorder
        self.name = name
        self._require_unique_ids = require_unique_ids
        self._tx_time: "Dict[str, float]" = {}
        self._priority: "Dict[str, int]" = {}
        self._order: "Dict[str, int]" = {}
        self._queues: "Dict[str, Deque[FrameInstance]]" = {}
        self._busy = False
        self._on_start: "Dict[str, Callable[[str, FrameInstance], None]]" \
            = {}
        self._on_complete: \
            "Dict[str, Callable[[str, FrameInstance, float], None]]" = {}

    # ------------------------------------------------------------------
    def add_frame(self, name: str, can_id: int, tx_time: float,
                  on_start: Optional[Callable] = None,
                  on_complete: Optional[Callable] = None) -> None:
        if name in self._tx_time:
            raise ModelError(f"duplicate bus frame {name!r}")
        if tx_time <= 0:
            raise ModelError(f"frame {name}: tx_time must be positive")
        if self._require_unique_ids:
            for other, ident in self._priority.items():
                if ident == can_id:
                    raise ModelError(
                        f"frames {other} and {name} share identifier "
                        f"{can_id}")
        self._tx_time[name] = tx_time
        self._priority[name] = can_id
        self._order[name] = len(self._order)
        self._queues[name] = deque()
        if on_start is not None:
            self._on_start[name] = on_start
        if on_complete is not None:
            self._on_complete[name] = on_complete

    def request(self, frame: str) -> FrameInstance:
        """Queue one transmission of *frame* at the current time."""
        if frame not in self._tx_time:
            raise ModelError(f"unknown bus frame {frame!r}")
        instance = FrameInstance(frame=frame, enqueued=self._sim.now)
        self._queues[frame].append(instance)
        if not self._busy:
            self._arbitrate()
        return instance

    def queue_depth(self, frame: str) -> int:
        return len(self._queues[frame])

    # ------------------------------------------------------------------
    def _arbitrate(self) -> None:
        if self._busy:
            # A completion hook may synchronously request() a successor
            # frame, which arbitrates and seizes the bus before
            # _finish's own arbitration runs; starting a second,
            # overlapping transmission here would break the
            # non-preemptive serialisation the analysis assumes.
            return
        contenders = [f for f, q in self._queues.items() if q]
        if not contenders:
            return
        winner = min(contenders,
                     key=lambda f: (self._priority[f], self._order[f]))
        instance = self._queues[winner].popleft()
        self._busy = True
        start_hook = self._on_start.get(winner)
        if start_hook is not None:
            start_hook(winner, instance)
        duration = self._tx_time[winner]
        self._sim.schedule_in(duration,
                              lambda: self._finish(winner, instance))

    def _finish(self, frame: str, instance: FrameInstance) -> None:
        now = self._sim.now
        if self._recorder is not None:
            self._recorder.record(frame, instance.enqueued, now)
        self._busy = False
        complete_hook = self._on_complete.get(frame)
        if complete_hook is not None:
            complete_hook(frame, instance, now)
        self._arbitrate()
