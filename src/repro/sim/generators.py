"""Stimulus generation: event sequences consistent with event models.

Three generators, all returning sorted arrival-time lists:

* :func:`periodic_arrivals` — a strictly periodic sequence with optional
  phase.
* :func:`random_jitter_arrivals` — periodic reference points displaced by
  uniform random jitter, post-processed to respect a minimum distance;
  the result is a legal sequence of the (P, J, d_min) standard model.
* :func:`worst_case_arrivals` — the *critical-instant* sequence of any
  event model: event n arrives exactly at δ⁻(n + 1), packing events as
  early as the model permits.  This is the sequence busy-window analysis
  assumes, so simulated response times under it approach the analytic
  bounds from below.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.standard import StandardEventModel


def periodic_arrivals(period: float, t_end: float,
                      phase: float = 0.0) -> List[float]:
    """Arrivals at phase, phase+P, phase+2P, ... up to t_end."""
    if period <= 0:
        raise ModelError("period must be positive")
    if phase < 0:
        raise ModelError("phase must be >= 0")
    out = []
    t = phase
    while t <= t_end:
        out.append(t)
        t += period
    return out


def random_jitter_arrivals(model: StandardEventModel, t_end: float,
                           rng: Optional[random.Random] = None,
                           phase: float = 0.0) -> List[float]:
    """A random legal arrival sequence of a standard event model.

    Each event k is nominally released at ``phase + k * P`` and displaced
    by ``U(0, J)``; releases are then made non-decreasing and at least
    ``d_min`` apart by clamping from the left.  Clamping can only move
    events *later*, which keeps the sequence inside the model's bounds.
    """
    rng = rng if rng is not None else random.Random(0)
    arrivals: List[float] = []
    k = 0
    while True:
        nominal = phase + k * model.period
        if nominal > t_end:
            break
        t = nominal + rng.uniform(0.0, model.jitter)
        if arrivals:
            t = max(t, arrivals[-1] + model.d_min)
        arrivals.append(t)
        k += 1
    return [t for t in arrivals if t <= t_end]


def worst_case_arrivals(model: EventModel, t_end: float,
                        phase: float = 0.0) -> List[float]:
    """The earliest-possible (critical instant) arrival sequence.

    With the first event at ``phase``, the n-th event (1-based) can
    arrive no earlier than ``phase + δ⁻(n)``; arriving exactly then
    achieves the η⁺ bound in every window anchored at ``phase``.
    """
    out = []
    n = 1
    while True:
        t = phase + model.delta_min(n)
        if t > t_end:
            break
        out.append(t)
        n += 1
        if n > 10_000_000:
            raise ModelError("worst_case_arrivals: runaway stream")
    return out
