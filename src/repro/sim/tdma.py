"""TDMA bus/processor simulator.

A fixed slot table cycles forever; each owner executes only inside its
own slots.  A job that does not finish within the slot is paused at the
boundary and resumes in the owner's next slot; jobs of one owner queue
FIFO.  Arrivals during the owner's own slot are served immediately —
matching the supply-function analysis in :mod:`repro.analysis.tdma`,
whose worst case is an arrival just *after* the slot ends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .._errors import ModelError
from .engine import Simulator
from .measure import ResponseRecorder


@dataclass
class _TdmaJob:
    owner: str
    activation: float
    remaining: float


class TdmaSim:
    """Slot-table driven executor.

    Parameters
    ----------
    slots:
        ``[(owner, length), ...]`` — the slot table, repeated forever
        starting at t = 0.
    """

    def __init__(self, sim: Simulator, recorder: ResponseRecorder,
                 slots: List[Tuple[str, float]]):
        if not slots:
            raise ModelError("TDMA needs a non-empty slot table")
        for owner, length in slots:
            if length <= 0:
                raise ModelError(f"slot of {owner!r} must be positive")
        self._sim = sim
        self._recorder = recorder
        self._slots = list(slots)
        self._queues: "Dict[str, Deque[_TdmaJob]]" = {}
        for owner, _ in slots:
            self._queues.setdefault(owner, deque())
        self._exec_time: "Dict[str, float]" = {}
        self._slot_index = 0
        self._current_owner: Optional[str] = None
        self._slot_end = 0.0
        self._running: Optional[_TdmaJob] = None
        self._run_started = 0.0
        self._token = 0
        sim.schedule(0.0, self._next_slot)

    @property
    def cycle(self) -> float:
        return sum(length for _, length in self._slots)

    def add_task(self, owner: str, exec_time: float) -> None:
        """Declare the per-activation execution demand of a slot owner."""
        if owner not in self._queues:
            raise ModelError(f"no slot for owner {owner!r}")
        if exec_time <= 0:
            raise ModelError("exec_time must be positive")
        self._exec_time[owner] = exec_time

    def activate(self, owner: str) -> None:
        """Release one job of *owner* at the current time."""
        if owner not in self._exec_time:
            raise ModelError(f"unknown or undeclared owner {owner!r}")
        self._queues[owner].append(
            _TdmaJob(owner, self._sim.now, self._exec_time[owner]))
        self._try_start()

    def backlog(self, owner: str) -> int:
        queued = len(self._queues[owner])
        if self._running is not None and self._running.owner == owner:
            queued += 1
        return queued

    # ------------------------------------------------------------------
    def _next_slot(self) -> None:
        self._pause_running()
        owner, length = self._slots[self._slot_index]
        self._slot_index = (self._slot_index + 1) % len(self._slots)
        self._current_owner = owner
        self._slot_end = self._sim.now + length
        self._sim.schedule(self._slot_end, self._next_slot)
        self._try_start()

    def _pause_running(self) -> None:
        if self._running is None:
            return
        job = self._running
        job.remaining -= self._sim.now - self._run_started
        self._running = None
        self._token += 1  # invalidate the scheduled completion
        if job.remaining > 1e-12:
            self._queues[job.owner].appendleft(job)
        else:
            # Completion coincides with the slot boundary.
            self._recorder.record(job.owner, job.activation, self._sim.now)

    def _try_start(self) -> None:
        if self._running is not None or self._current_owner is None:
            return
        queue = self._queues[self._current_owner]
        if not queue:
            return
        now = self._sim.now
        if now >= self._slot_end - 1e-12:
            return
        job = queue.popleft()
        self._running = job
        self._run_started = now
        finish = now + job.remaining
        if finish <= self._slot_end + 1e-12:
            self._token += 1
            token = self._token
            self._sim.schedule(finish, lambda: self._complete(token))
        # else: the slot-boundary event will pause and re-queue the job.

    def _complete(self, token: int) -> None:
        if token != self._token or self._running is None:
            return
        job = self._running
        self._running = None
        self._recorder.record(job.owner, job.activation, self._sim.now)
        self._try_start()
