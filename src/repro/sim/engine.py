"""Minimal discrete-event simulation engine.

A classic time-ordered event queue: callbacks scheduled at absolute times,
executed in (time, insertion order).  All simulators in this package
(preemptive CPU, CAN bus, COM layer) are built on this engine so an entire
sender→bus→receiver chain runs in a single coherent timeline.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, List, Optional, Tuple

from .. import obs as _obs
from .._errors import ModelError


class Simulator:
    """Discrete-event executive."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule *action* at absolute *time* (>= now)."""
        if time < self._now - 1e-12:
            raise ModelError(
                f"cannot schedule into the past ({time} < {self._now})")
        heapq.heappush(self._queue, (time, next(self._counter), action))

    def schedule_in(self, delay: float,
                    action: Callable[[], None]) -> None:
        """Schedule *action* after *delay* time units."""
        self.schedule(self._now + delay, action)

    def run_until(self, t_end: float) -> None:
        """Execute events up to and including *t_end*."""
        self._running = True
        executed = 0
        t_start = time.perf_counter() if _obs.enabled else 0.0
        while self._queue and self._running:
            when, _, action = self._queue[0]
            if when > t_end:
                break
            heapq.heappop(self._queue)
            self._now = when
            action()
            executed += 1
        self._now = max(self._now, t_end)
        self._running = False
        if _obs.enabled and executed:
            elapsed = time.perf_counter() - t_start
            registry = _obs.metrics()
            registry.counter("sim.events").inc(executed)
            registry.histogram("sim.run_seconds").observe(elapsed)
            if elapsed > 0:
                registry.gauge("sim.events_per_second").set(
                    executed / elapsed)

    def stop(self) -> None:
        """Abort a running :meth:`run_until` after the current event."""
        self._running = False

    def pending_events(self) -> int:
        return len(self._queue)
