"""Full gateway-scenario simulation: sources → COM → CAN → receiver CPU.

Assembles the paper's Fig. 2 topology (and any system of that class) into
one discrete-event run:

* source arrival sequences (from :mod:`repro.sim.generators`) drive
  :meth:`ComLayerSim.write_signal`;
* the COM layer requests frame transmissions on a simulated CAN bus;
* fresh-value deliveries activate receiver tasks on a preemptive SPP CPU.

The run yields an :class:`~repro.sim.measure.EventTrace` (all stream
timestamps) and a :class:`~repro.sim.measure.ResponseRecorder` (frame and
task response times) — everything the validation benchmarks compare
against the analytic bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._errors import ModelError
from ..can.timing import CanBusTiming
from ..com.layer import ComLayer
from ..eventmodels.standard import StandardEventModel
from .canbus import CanBusSim
from .comsim import ComLayerSim
from .cpu import SppCpuSim
from .engine import Simulator
from .generators import (
    periodic_arrivals,
    random_jitter_arrivals,
    worst_case_arrivals,
)
from .measure import EventTrace, ResponseRecorder


@dataclass
class GatewayScenario:
    """Static description of one gateway simulation.

    Attributes
    ----------
    layer:
        The COM layer (frames + signals).
    bus_timing:
        CAN bit timing; worst-case transmission times are used on the
        simulated wire.
    signal_arrivals:
        signal name → explicit arrival times of the producing stream.
    cpu_tasks:
        task name → (priority, exec_time, activating signal).  Tasks run
        on one shared SPP CPU and are activated per fresh delivery of
        their signal.
    """

    layer: ComLayer
    bus_timing: CanBusTiming
    signal_arrivals: "Dict[str, List[float]]"
    cpu_tasks: "Dict[str, Tuple[int, float, str]]"


@dataclass
class GatewayRun:
    """Outcome of :func:`simulate_gateway`."""

    trace: EventTrace
    responses: ResponseRecorder
    t_end: float

    def delivered(self, signal: str) -> List[float]:
        """Times at which fresh values of *signal* reached the receiver."""
        return self.trace.events(f"rx.{signal}")

    def frame_transmissions(self, frame: str) -> List[float]:
        """Completion times of all transmissions of *frame*."""
        return self.trace.events(f"wire.{frame}")


def simulate_gateway(scenario: GatewayScenario, t_end: float) -> GatewayRun:
    """Run a gateway scenario for ``t_end`` time units."""
    sim = Simulator()
    trace = EventTrace()
    responses = ResponseRecorder()

    bus = CanBusSim(sim, recorder=responses)
    tx_times = {
        f.name: scenario.bus_timing.transmission_time_max(
            f.payload_bytes, f.extended_id)
        for f in scenario.layer.frames.values()
    }
    com = ComLayerSim(sim, scenario.layer, bus, tx_times, trace=trace)

    cpu = SppCpuSim(sim, responses)
    for task, (priority, exec_time, signal) in scenario.cpu_tasks.items():
        cpu.add_task(task, priority, exec_time)
        com.on_delivery(signal,
                        lambda _sig, _t, _task=task: cpu.activate(_task))

    for signal, arrivals in scenario.signal_arrivals.items():
        for t in arrivals:
            if t > t_end:
                continue
            sim.schedule(t, lambda _s=signal: _write(com, trace, _s))

    sim.run_until(t_end)
    return GatewayRun(trace=trace, responses=responses, t_end=t_end)


def _write(com: ComLayerSim, trace: EventTrace, signal: str) -> None:
    trace.record(f"src.{signal}", com._sim.now)
    com.write_signal(signal)


def arrivals_for_models(models: "Dict[str, StandardEventModel]",
                        t_end: float, mode: str = "worst",
                        seed: int = 0,
                        phases: "Optional[Dict[str, float]]" = None,
                        rng: "Optional[random.Random]" = None
                        ) -> "Dict[str, List[float]]":
    """Generate arrival sequences for a set of source models.

    ``mode``: "worst" (critical-instant packing), "periodic" (plain
    periodic with optional per-signal phase), or "random" (jittered).

    Randomness is fully explicit: "random" mode derives one child
    generator per signal from ``rng`` (or ``Random(seed)`` when no
    generator is passed), so equal seeds yield identical arrival
    sequences in every process — the determinism the soak oracle's
    differential replay relies on.  No global :mod:`random` state is
    read or written.
    """
    phases = phases or {}
    out: "Dict[str, List[float]]" = {}
    rng = rng if rng is not None else random.Random(seed)
    for name, model in models.items():
        phase = phases.get(name, 0.0)
        if mode == "worst":
            out[name] = worst_case_arrivals(model, t_end, phase=phase)
        elif mode == "periodic":
            out[name] = periodic_arrivals(model.period, t_end, phase=phase)
        elif mode == "random":
            out[name] = random_jitter_arrivals(
                model, t_end, rng=random.Random(rng.random()), phase=phase)
        else:
            raise ModelError(f"unknown arrival mode {mode!r}")
    return out
