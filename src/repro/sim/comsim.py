"""COM-layer simulator: registers, frame triggering, fresh-value delivery.

Implements the behaviour the paper describes in section 4:

* Senders write signal values into registers, **overwriting** previous
  values.
* *Triggering* signals request a transmission of their frame on every
  write; *pending* signals never do.
* *Periodic*/*mixed* frames additionally request transmissions on a
  timer.
* At transmission start the frame latches its registers: a signal is
  carried **fresh** if its register was written since the signal's last
  transmitted value (overwrite semantics — multiple writes between
  transmissions collapse into one fresh delivery).
* At transmission end, every fresh signal is *delivered*: the receiver-
  side register is updated and the consumer is activated (the paper's
  interrupt receive mode).

Delivered-signal streams (``rx.<signal>``) are recorded in an
:class:`~repro.sim.measure.EventTrace`; these are exactly the streams the
hierarchical event model's unpacked inner models must bound.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .._errors import ModelError
from ..com.frame import Frame
from ..com.layer import ComLayer
from .canbus import CanBusSim, FrameInstance
from .engine import Simulator
from .measure import EventTrace

DeliveryCallback = Callable[[str, float], None]


class ComLayerSim:
    """Simulated sender-side COM layer feeding a :class:`CanBusSim`."""

    def __init__(self, sim: Simulator, layer: ComLayer, bus: CanBusSim,
                 tx_times: "Dict[str, float]",
                 trace: Optional[EventTrace] = None):
        """
        Parameters
        ----------
        tx_times:
            frame name → wire time used on the simulated bus (typically
            ``CanBusTiming.transmission_time_max`` for worst-case runs).
        trace:
            Optional event trace; records ``tx.<frame>`` (requests),
            ``wire.<frame>`` (completions) and ``rx.<signal>``
            (fresh-value deliveries).
        """
        self._sim = sim
        self._layer = layer
        self._bus = bus
        self._trace = trace
        self._frame_of: "Dict[str, Frame]" = {}
        self._unsent: "Dict[str, bool]" = {}
        self._on_delivery: "Dict[str, DeliveryCallback]" = {}

        for frame in layer.frames.values():
            try:
                tx = tx_times[frame.name]
            except KeyError:
                raise ModelError(
                    f"no tx time for frame {frame.name!r}") from None
            bus.add_frame(frame.name, frame.can_id, tx,
                          on_start=self._latch_registers,
                          on_complete=self._deliver)
            for sig in frame.signals:
                if sig.name in self._frame_of:
                    raise ModelError(
                        f"signal {sig.name!r} mapped to two frames")
                self._frame_of[sig.name] = frame
                self._unsent[sig.name] = False
            if frame.has_timer:
                self._start_timer(frame)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def write_signal(self, signal: str) -> None:
        """A sender task writes a new value at the current time."""
        frame = self._frame_of.get(signal)
        if frame is None:
            raise ModelError(f"unknown signal {signal!r}")
        self._unsent[signal] = True
        effective = frame.effective_transfer(frame.signal(signal))
        if effective.value == "triggering":
            self._request(frame)

    def on_delivery(self, signal: str,
                    callback: DeliveryCallback) -> None:
        """Register the receiver activation for a signal (interrupt
        receive mode)."""
        if signal not in self._frame_of:
            raise ModelError(f"unknown signal {signal!r}")
        self._on_delivery[signal] = callback

    def poll_signal(self, signal: str, period: float,
                    callback: Optional[DeliveryCallback] = None,
                    phase: float = 0.0) -> None:
        """Polling receive mode: the consumer samples the receiver-side
        register every ``period`` and is activated only when it finds a
        value it has not seen yet (the paper's "fetch the register value
        from time to time").

        Activations are traced as ``poll.<signal>``; at most one per
        poll period, so the observed stream must stay within
        :func:`repro.core.unpack_polled`'s shaped bound.
        """
        if signal not in self._frame_of:
            raise ModelError(f"unknown signal {signal!r}")
        if period <= 0:
            raise ModelError("poll period must be positive")
        state = {"unseen": False}
        original = self._on_delivery.get(signal)

        def mark_delivered(sig: str, time: float) -> None:
            state["unseen"] = True
            if original is not None:
                original(sig, time)

        self._on_delivery[signal] = mark_delivered

        def poll():
            if state["unseen"]:
                state["unseen"] = False
                now = self._sim.now
                if self._trace is not None:
                    self._trace.record(f"poll.{signal}", now)
                if callback is not None:
                    callback(signal, now)
            self._sim.schedule_in(period, poll)

        self._sim.schedule(phase + period, poll)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _start_timer(self, frame: Frame) -> None:
        def tick():
            self._request(frame)
            self._sim.schedule_in(frame.period, tick)

        self._sim.schedule(frame.period, tick)

    def _request(self, frame: Frame) -> None:
        if self._trace is not None:
            self._trace.record(f"tx.{frame.name}", self._sim.now)
        self._bus.request(frame.name)

    def _latch_registers(self, frame_name: str,
                         instance: FrameInstance) -> None:
        frame = self._layer.frames[frame_name]
        fresh = []
        for sig in frame.signals:
            if self._unsent[sig.name]:
                fresh.append(sig.name)
                self._unsent[sig.name] = False
        instance.payload["fresh"] = fresh

    def _deliver(self, frame_name: str, instance: FrameInstance,
                 time: float) -> None:
        if self._trace is not None:
            self._trace.record(f"wire.{frame_name}", time)
        for signal in instance.payload.get("fresh", ()):
            if self._trace is not None:
                self._trace.record(f"rx.{signal}", time)
            callback = self._on_delivery.get(signal)
            if callback is not None:
                callback(signal, time)
