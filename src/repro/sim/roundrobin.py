"""Round-robin processor simulator.

The scheduler cycles through the task ring; a task with pending work
receives up to its quantum (slot) of contiguous service, then the ring
advances.  Empty queues are skipped without consuming time (work-
conserving), matching the analysis bound in
:mod:`repro.analysis.round_robin` where idle queues donate their slots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .._errors import ModelError
from .engine import Simulator
from .measure import ResponseRecorder


@dataclass
class _RrJob:
    task: str
    activation: float
    remaining: float


class RoundRobinSim:
    """Quantum-based round-robin executor."""

    def __init__(self, sim: Simulator, recorder: ResponseRecorder):
        self._sim = sim
        self._recorder = recorder
        self._ring: List[str] = []
        self._quantum: "Dict[str, float]" = {}
        self._exec_time: "Dict[str, float]" = {}
        self._queues: "Dict[str, Deque[_RrJob]]" = {}
        self._ring_pos = 0
        self._busy = False

    def add_task(self, name: str, quantum: float,
                 exec_time: float) -> None:
        if name in self._quantum:
            raise ModelError(f"duplicate RR task {name!r}")
        if quantum <= 0 or exec_time <= 0:
            raise ModelError("quantum and exec_time must be positive")
        self._ring.append(name)
        self._quantum[name] = quantum
        self._exec_time[name] = exec_time
        self._queues[name] = deque()

    def activate(self, name: str) -> None:
        if name not in self._quantum:
            raise ModelError(f"unknown RR task {name!r}")
        self._queues[name].append(
            _RrJob(name, self._sim.now, self._exec_time[name]))
        if not self._busy:
            self._dispatch()

    def backlog(self, name: str) -> int:
        return len(self._queues[name])

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Give the next non-empty queue in the ring one quantum."""
        if all(not q for q in self._queues.values()):
            self._busy = False
            return
        self._busy = True
        # Advance the ring to the next task with pending work.
        for _ in range(len(self._ring)):
            task = self._ring[self._ring_pos]
            self._ring_pos = (self._ring_pos + 1) % len(self._ring)
            if self._queues[task]:
                break
        self._serve_quantum(task)

    def _serve_quantum(self, task: str) -> None:
        budget = self._quantum[task]
        queue = self._queues[task]
        start = self._sim.now
        used = 0.0
        # Serve FIFO jobs until the quantum is exhausted or the queue
        # drains; completions land at their exact instants.
        while queue and budget - used > 1e-12:
            job = queue[0]
            work = min(job.remaining, budget - used)
            job.remaining -= work
            used += work
            if job.remaining <= 1e-12:
                queue.popleft()
                finish = start + used
                self._sim.schedule(
                    finish,
                    lambda j=job, f=finish:
                    self._recorder.record(j.task, j.activation, f))
        self._sim.schedule(start + used, self._dispatch)
