"""Generic simulation of system graphs: simulate what you analyse.

Maps a :class:`repro.system.System` onto the component simulators and
runs it end to end: source arrival sequences activate their consumer
tasks; every task completion activates its successors; each resource is
simulated by the executor matching its analysis policy:

========================  =============================
scheduler policy          simulator
========================  =============================
``spp``                   :class:`~repro.sim.cpu.SppCpuSim`
``spnp``                  :class:`~repro.sim.canbus.CanBusSim`
``tdma``                  :class:`~repro.sim.tdma.TdmaSim`
``round_robin``           :class:`~repro.sim.roundrobin.RoundRobinSim`
``edf``                   :class:`~repro.sim.edf.EdfCpuSim`
========================  =============================

Scope: task-graph systems with OR/AND activation.  Systems containing
PACK/UNPACK junctions have register semantics that this generic mapper
does not implement — use :mod:`repro.sim.gateway` (or model the COM
layer explicitly); such systems are rejected with a clear error.

Execution times are simulated at ``c_max`` (the value the analysis
bounds) — observed response times must therefore stay below every
analytic WCRT, which :func:`simulate_system` can assert directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from .._errors import ModelError
from ..system.model import JunctionKind, System, Task
from .canbus import CanBusSim
from .cpu import SppCpuSim
from .edf import EdfCpuSim
from .engine import Simulator
from .measure import EventTrace, ResponseRecorder
from .roundrobin import RoundRobinSim
from .tdma import TdmaSim


@dataclass
class SystemRun:
    """Outcome of :func:`simulate_system`."""

    trace: EventTrace
    responses: ResponseRecorder
    t_end: float


class _AndGate:
    """Counting AND-join: fires once every input has one pending token."""

    def __init__(self, inputs: List[str]):
        self._pending: "Dict[str, int]" = {name: 0 for name in inputs}

    def offer(self, source: str) -> bool:
        self._pending[source] += 1
        if all(count > 0 for count in self._pending.values()):
            for name in self._pending:
                self._pending[name] -= 1
            return True
        return False


class SystemSimulation:
    """Instantiated simulators + wiring for one system graph."""

    def __init__(self, system: System,
                 arrivals: "Dict[str, List[float]]"):
        self._check_supported(system)
        self.system = system
        self.sim = Simulator()
        self.trace = EventTrace()
        self.responses = ResponseRecorder()
        self._executors: "Dict[str, object]" = {}
        self._activate: "Dict[str, callable]" = {}
        self._successors: "Dict[str, List[Task]]" = defaultdict(list)
        self._and_gates: "Dict[str, _AndGate]" = {}

        self._build_executors()
        self._wire_graph()
        self._schedule_sources(arrivals)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_supported(system: System) -> None:
        for junction in system.junctions.values():
            if junction.kind in (JunctionKind.PACK, JunctionKind.UNPACK):
                raise ModelError(
                    f"junction {junction.name}: PACK/UNPACK register "
                    f"semantics are not part of the generic system "
                    f"simulator — use repro.sim.gateway for COM-layer "
                    f"scenarios")

    def _build_executors(self) -> None:
        for resource in self.system.resources.values():
            tasks = self.system.tasks_on(resource.name)
            if not tasks:
                continue
            policy = resource.scheduler.policy
            if policy in ("spp", "hspp"):
                cpu = SppCpuSim(self.sim, self.responses,
                                name=resource.name)
                for t in tasks:
                    cpu.add_task(t.name, t.priority, t.c_max,
                                 on_complete=self._on_complete)
                    self._activate[t.name] = \
                        (lambda _n=t.name, _c=cpu: _c.activate(_n))
            elif policy == "spnp":
                bus = CanBusSim(self.sim, self.responses,
                                name=resource.name,
                                require_unique_ids=False)
                for t in tasks:
                    bus.add_frame(
                        t.name, t.priority, t.c_max,
                        on_complete=lambda name, inst, time:
                        self._on_complete(name, time))
                    self._activate[t.name] = \
                        (lambda _n=t.name, _b=bus: _b.request(_n))
            elif policy == "tdma":
                slots = [(t.name, t.slot) for t in tasks]
                tdma = TdmaSim(self.sim, self._recorder_with_hook(),
                               slots)
                for t in tasks:
                    tdma.add_task(t.name, t.c_max)
                    self._activate[t.name] = \
                        (lambda _n=t.name, _x=tdma: _x.activate(_n))
            elif policy == "round_robin":
                rr = RoundRobinSim(self.sim, self._recorder_with_hook())
                for t in tasks:
                    rr.add_task(t.name, quantum=t.slot,
                                exec_time=t.c_max)
                    self._activate[t.name] = \
                        (lambda _n=t.name, _x=rr: _x.activate(_n))
            elif policy == "edf":
                edf = EdfCpuSim(self.sim, self._recorder_with_hook(),
                                name=resource.name)
                for t in tasks:
                    edf.add_task(t.name, t.deadline, t.c_max)
                    self._activate[t.name] = \
                        (lambda _n=t.name, _x=edf: _x.activate(_n))
            else:
                raise ModelError(
                    f"resource {resource.name}: no simulator for "
                    f"policy {policy!r}")

    def _recorder_with_hook(self) -> ResponseRecorder:
        """A recorder proxy that also fires successor activations.

        TDMA/RR/EDF executors report completions only through their
        recorder; this shim taps those records.
        """
        outer = self

        class _Hooked(ResponseRecorder):
            def record(self, task, activation, completion):
                outer.responses.record(task, activation, completion)
                outer._on_complete(task, completion)

        return _Hooked()

    # ------------------------------------------------------------------
    def _wire_graph(self) -> None:
        # Task consumers (with task-level AND gates).
        for task in self.system.tasks.values():
            for port in task.inputs:
                node = self.system.producer_of(port)
                self._successors[node].append(("task", task.name))
            if task.activation == "and" and len(task.inputs) > 1:
                self._and_gates[task.name] = _AndGate(
                    [self.system.producer_of(p) for p in task.inputs])
        # Junction consumers: OR junctions forward every input event,
        # AND junctions gate on all inputs.
        for junction in self.system.junctions.values():
            for port in junction.inputs:
                node = self.system.producer_of(port)
                self._successors[node].append(
                    ("junction", junction.name))
            if junction.kind is JunctionKind.AND:
                self._and_gates[junction.name] = _AndGate(
                    [self.system.producer_of(p)
                     for p in junction.inputs])

    def _schedule_sources(self,
                          arrivals: "Dict[str, List[float]]") -> None:
        for name in self.system.sources:
            for t in arrivals.get(name, []):
                self.sim.schedule(
                    t, lambda _n=name: self._emit(_n))

    # ------------------------------------------------------------------
    def _emit(self, node: str) -> None:
        """An event appears at *node*'s output: activate successors."""
        self.trace.record(f"out.{node}", self.sim.now)
        for kind, name in self._successors.get(node, []):
            gate = self._and_gates.get(name)
            if gate is not None and not gate.offer(node):
                continue
            if kind == "task":
                self._activate[name]()
            else:
                self._emit(name)

    def _on_complete(self, task: str, time: float) -> None:
        self._emit(task)

    def run(self, t_end: float) -> SystemRun:
        self.sim.run_until(t_end)
        return SystemRun(trace=self.trace, responses=self.responses,
                         t_end=t_end)


def simulate_system(system: System,
                    arrivals: "Dict[str, List[float]]",
                    t_end: float) -> SystemRun:
    """Simulate a task-graph system under explicit source arrivals."""
    return SystemSimulation(system, arrivals).run(t_end)
