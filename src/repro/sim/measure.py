"""Measurement containers for simulation runs.

A :class:`ResponseRecorder` collects (activation, completion) pairs per
task; an :class:`EventTrace` collects raw event timestamps per stream.
Both offer the summaries the validation benchmarks need: observed
worst/best response times and observed distance/arrival curves, plus
checks against analytic bounds.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .._errors import ModelError
from ..eventmodels.base import EventModel
from ..eventmodels.trace import model_from_trace, trace_within_bounds


class EventTrace:
    """Timestamped event streams, keyed by stream name."""

    def __init__(self):
        self._events: "Dict[str, List[float]]" = defaultdict(list)

    def record(self, stream: str, time: float) -> None:
        events = self._events[stream]
        if events and time < events[-1] - 1e-12:
            raise ModelError(
                f"stream {stream}: event at {time} before last "
                f"{events[-1]}")
        events.append(time)

    def events(self, stream: str) -> List[float]:
        return list(self._events.get(stream, []))

    def count(self, stream: str) -> int:
        return len(self._events.get(stream, []))

    def streams(self) -> List[str]:
        return sorted(self._events)

    def observed_model(self, stream: str, n_max: Optional[int] = None):
        """Distance curves actually observed on a stream."""
        return model_from_trace(self.events(stream), n_max=n_max,
                                name=f"obs({stream})")

    def check_conservative(self, stream: str, bound: EventModel,
                           eps: float = 1e-6,
                           window: "Optional[Tuple[float, float]]" = None,
                           n_max: Optional[int] = None) -> bool:
        """True if the observed stream stays within the analytic bound
        (its events are never packed tighter than δ⁻ of *bound*).

        Degenerate observations are *vacuously* conservative rather
        than errors: an unknown/empty stream, a single recorded event,
        and a zero-length (or inverted) observation ``window`` all
        return True — no window of two events exists to violate δ⁻.

        ``window`` restricts the check to events in ``[t0, t1]``;
        ``n_max`` clamps the longest window checked (the full check is
        quadratic in the trace length).
        """
        events = self.events(stream)
        if window is not None:
            t0, t1 = window
            if t1 - t0 <= 0:
                return True
            events = [t for t in events if t0 <= t <= t1]
        if len(events) < 2:
            return True
        return trace_within_bounds(events, bound, eps=eps, n_max=n_max)


class ResponseRecorder:
    """Per-task activation/completion bookkeeping."""

    def __init__(self):
        self._responses: "Dict[str, List[Tuple[float, float]]]" = \
            defaultdict(list)

    def record(self, task: str, activation: float,
               completion: float) -> None:
        if completion < activation - 1e-12:
            raise ModelError(
                f"task {task}: completion {completion} before activation "
                f"{activation}")
        self._responses[task].append((activation, completion))

    def responses(self, task: str) -> List[float]:
        return [c - a for a, c in self._responses.get(task, [])]

    def jobs(self, task: str) -> List[Tuple[float, float]]:
        return list(self._responses.get(task, []))

    def worst_case(self, task: str) -> float:
        rs = self.responses(task)
        if not rs:
            raise ModelError(f"task {task}: no completed jobs recorded")
        return max(rs)

    def best_case(self, task: str) -> float:
        rs = self.responses(task)
        if not rs:
            raise ModelError(f"task {task}: no completed jobs recorded")
        return min(rs)

    def count(self, task: str) -> int:
        return len(self._responses.get(task, []))

    def tasks(self) -> List[str]:
        return sorted(self._responses)

    def summary(self) -> "Dict[str, Tuple[float, float, int]]":
        """task -> (best, worst, jobs)."""
        return {t: (self.best_case(t), self.worst_case(t), self.count(t))
                for t in self.tasks()}
