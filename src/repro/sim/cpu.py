"""Preemptive fixed-priority CPU simulator.

Event-driven SPP executor: on every activation or completion the highest-
priority ready job runs; a preempted job keeps its remaining execution
time.  Activations of the same task queue FIFO.  Response times
(completion - activation) are recorded per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .._errors import ModelError
from .engine import Simulator
from .measure import ResponseRecorder


@dataclass
class _Job:
    task: str
    priority: int
    activation: float
    remaining: float
    seq: int
    started_at: Optional[float] = None


class SppCpuSim:
    """Static-priority preemptive processor (smaller priority wins)."""

    def __init__(self, sim: Simulator, recorder: ResponseRecorder,
                 name: str = "cpu"):
        self._sim = sim
        self._recorder = recorder
        self.name = name
        self._exec_time: "Dict[str, float]" = {}
        self._priority: "Dict[str, int]" = {}
        self._ready: List[_Job] = []
        self._running: Optional[_Job] = None
        self._completion_token = 0
        self._seq = 0
        self._on_complete: "Dict[str, Callable[[str, float], None]]" = {}

    # ------------------------------------------------------------------
    def add_task(self, name: str, priority: int, exec_time: float,
                 on_complete: Optional[Callable[[str, float], None]] = None
                 ) -> None:
        """Register a task; *on_complete(task, time)* fires per job end."""
        if name in self._exec_time:
            raise ModelError(f"duplicate CPU task {name!r}")
        if exec_time <= 0:
            raise ModelError(f"task {name}: exec_time must be positive")
        self._exec_time[name] = exec_time
        self._priority[name] = priority
        if on_complete is not None:
            self._on_complete[name] = on_complete

    def activate(self, task: str) -> None:
        """Release one job of *task* at the current simulation time."""
        if task not in self._exec_time:
            raise ModelError(f"unknown CPU task {task!r}")
        self._seq += 1
        job = _Job(task=task, priority=self._priority[task],
                   activation=self._sim.now,
                   remaining=self._exec_time[task], seq=self._seq)
        self._ready.append(job)
        self._reschedule()

    def backlog(self) -> int:
        """Jobs currently ready or running."""
        return len(self._ready) + (1 if self._running else 0)

    # ------------------------------------------------------------------
    def _pick(self) -> Optional[_Job]:
        if not self._ready:
            return None
        return min(self._ready, key=lambda j: (j.priority, j.seq))

    def _reschedule(self) -> None:
        now = self._sim.now
        best = self._pick()
        current = self._running
        if current is not None:
            if best is None or (current.priority, current.seq) <= \
                    (best.priority, best.seq):
                return  # keep running
            done = now - current.started_at
            if done >= current.remaining - 1e-12:
                # The job finishes at this very instant; its _complete
                # event sits later in this timestamp's event order, so
                # an arrival processed first would "preempt" zero
                # remaining work and stretch the response past the
                # analytic bound (which counts interference over
                # half-open windows — a same-instant arrival does not
                # interfere).  Complete it now instead.
                self._completion_token += 1  # drop the pending event
                self._running = None
                self._recorder.record(current.task, current.activation,
                                      now)
                callback = self._on_complete.get(current.task)
                if callback is not None:
                    callback(current.task, now)
                self._reschedule()
                return
            # Preempt: bank the work done so far.
            current.remaining -= done
            current.started_at = None
            self._ready.append(current)
            self._running = None
        if best is None:
            return
        self._ready.remove(best)
        best.started_at = now
        self._running = best
        self._completion_token += 1
        token = self._completion_token
        self._sim.schedule(now + best.remaining,
                           lambda: self._complete(token))

    def _complete(self, token: int) -> None:
        if token != self._completion_token or self._running is None:
            return  # stale completion (the job was preempted)
        job = self._running
        self._running = None
        now = self._sim.now
        self._recorder.record(job.task, job.activation, now)
        callback = self._on_complete.get(job.task)
        if callback is not None:
            callback(job.task, now)
        self._reschedule()
