"""Discrete-event simulation substrate for validating the analyses."""

from .canbus import CanBusSim, FrameInstance
from .comsim import ComLayerSim
from .cpu import SppCpuSim
from .edf import EdfCpuSim
from .engine import Simulator
from .gateway import (
    GatewayRun,
    GatewayScenario,
    arrivals_for_models,
    simulate_gateway,
)
from .generators import (
    periodic_arrivals,
    random_jitter_arrivals,
    worst_case_arrivals,
)
from .measure import EventTrace, ResponseRecorder
from .roundrobin import RoundRobinSim
from .system_sim import SystemRun, SystemSimulation, simulate_system
from .tdma import TdmaSim

__all__ = [
    "Simulator",
    "SppCpuSim",
    "EdfCpuSim",
    "CanBusSim",
    "TdmaSim",
    "RoundRobinSim",
    "FrameInstance",
    "ComLayerSim",
    "EventTrace",
    "ResponseRecorder",
    "GatewayScenario",
    "GatewayRun",
    "simulate_gateway",
    "SystemSimulation",
    "SystemRun",
    "simulate_system",
    "arrivals_for_models",
    "periodic_arrivals",
    "random_jitter_arrivals",
    "worst_case_arrivals",
]
