"""Preemptive EDF processor simulator.

Jobs carry absolute deadlines (activation + relative deadline); the
pending job with the earliest absolute deadline runs, preempting later-
deadline work.  Ties break by activation order (FIFO), matching the
conservative tie-handling of the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .._errors import ModelError
from .engine import Simulator
from .measure import ResponseRecorder


@dataclass
class _EdfJob:
    task: str
    activation: float
    abs_deadline: float
    remaining: float
    seq: int
    started_at: Optional[float] = None


class EdfCpuSim:
    """Earliest-deadline-first preemptive processor."""

    def __init__(self, sim: Simulator, recorder: ResponseRecorder,
                 name: str = "edf-cpu"):
        self._sim = sim
        self._recorder = recorder
        self.name = name
        self._exec_time: "Dict[str, float]" = {}
        self._deadline: "Dict[str, float]" = {}
        self._ready: List[_EdfJob] = []
        self._running: Optional[_EdfJob] = None
        self._token = 0
        self._seq = 0

    def add_task(self, name: str, deadline: float,
                 exec_time: float) -> None:
        if name in self._exec_time:
            raise ModelError(f"duplicate EDF task {name!r}")
        if deadline <= 0 or exec_time <= 0:
            raise ModelError("deadline and exec_time must be positive")
        self._exec_time[name] = exec_time
        self._deadline[name] = deadline

    def activate(self, task: str) -> None:
        if task not in self._exec_time:
            raise ModelError(f"unknown EDF task {task!r}")
        self._seq += 1
        now = self._sim.now
        job = _EdfJob(task=task, activation=now,
                      abs_deadline=now + self._deadline[task],
                      remaining=self._exec_time[task], seq=self._seq)
        self._ready.append(job)
        self._reschedule()

    # ------------------------------------------------------------------
    def _key(self, job: _EdfJob):
        return (job.abs_deadline, job.seq)

    def _reschedule(self) -> None:
        now = self._sim.now
        best = min(self._ready, key=self._key) if self._ready else None
        current = self._running
        if current is not None:
            if best is None or self._key(current) <= self._key(best):
                return
            current.remaining -= now - current.started_at
            current.started_at = None
            self._ready.append(current)
            self._running = None
        if best is None:
            return
        self._ready.remove(best)
        best.started_at = now
        self._running = best
        self._token += 1
        token = self._token
        self._sim.schedule(now + best.remaining,
                           lambda: self._complete(token))

    def _complete(self, token: int) -> None:
        if token != self._token or self._running is None:
            return
        job = self._running
        self._running = None
        self._recorder.record(job.task, job.activation, self._sim.now)
        self._reschedule()
