"""CAN frame bit-timing: worst-case transmission times.

A CAN data frame with an ``s``-byte payload contains, besides the data,
``g`` control/arbitration bits (34 for standard 11-bit identifiers, 54
for extended 29-bit identifiers) plus a 10-bit inter-frame/EOF tail that
is exempt from bit stuffing.  With the stuffing rule (one stuff bit after
every 5 equal bits, applicable to ``g + 8s`` bits), the maximum frame
length in bits is (Davis et al., the standard CAN analysis formula):

    bits_max(s) = g + 8 s + 13 + floor( (g + 8 s - 1) / 4 )

The transmission time is ``bits * τ_bit`` with ``τ_bit = 1 / bitrate``.
The best case has no stuff bits: ``bits_min(s) = g + 8 s + 13``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._errors import ModelError

#: Control-field bits subject to stuffing for standard (11-bit) frames.
STANDARD_CONTROL_BITS = 34
#: Control-field bits subject to stuffing for extended (29-bit) frames.
EXTENDED_CONTROL_BITS = 54
#: Fixed-form tail (CRC delimiter, ACK, EOF, intermission) — never stuffed.
UNSTUFFED_TAIL_BITS = 13

#: Maximum CAN 2.0 payload in bytes.
MAX_PAYLOAD = 8


def frame_bits_max(payload_bytes: int, extended_id: bool = False) -> int:
    """Worst-case (fully stuffed) length of a CAN frame in bits."""
    _check_payload(payload_bytes)
    g = EXTENDED_CONTROL_BITS if extended_id else STANDARD_CONTROL_BITS
    stuffable = g + 8 * payload_bytes
    return stuffable + UNSTUFFED_TAIL_BITS + (stuffable - 1) // 4


def frame_bits_min(payload_bytes: int, extended_id: bool = False) -> int:
    """Best-case (no stuff bits) length of a CAN frame in bits."""
    _check_payload(payload_bytes)
    g = EXTENDED_CONTROL_BITS if extended_id else STANDARD_CONTROL_BITS
    return g + 8 * payload_bytes + UNSTUFFED_TAIL_BITS


def _check_payload(payload_bytes: int) -> None:
    if not 0 <= payload_bytes <= MAX_PAYLOAD:
        raise ModelError(
            f"CAN payload must be 0..{MAX_PAYLOAD} bytes, got "
            f"{payload_bytes}")


#: Valid CAN FD payload sizes (DLC encoding beyond 8 bytes is coarse).
CAN_FD_PAYLOADS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64)


def fd_payload_size(payload_bytes: int) -> int:
    """Smallest valid CAN FD payload covering ``payload_bytes``."""
    for size in CAN_FD_PAYLOADS:
        if size >= payload_bytes:
            return size
    raise ModelError(
        f"CAN FD payload must be <= 64 bytes, got {payload_bytes}")


def fd_frame_bits_max(payload_bytes: int) -> int:
    """Worst-case bit count of a CAN FD frame (arbitration-phase bits
    only — see :meth:`CanBusTiming.fd_transmission_time_max` for the
    dual-bitrate wire time).

    Approximation from the literature (Bordoloi/Samii): a CAN FD frame
    with an ``s``-byte data phase carries ~29 arbitration-phase bits
    (standard ID) and ``28 + 10 + 8 s + ceil((16 + 8 s)/4)`` data-phase
    bits worst case (stuffed header remainder, stuff-count/CRC field).
    This helper returns the *data-phase* bit count; arbitration-phase
    bits are :data:`FD_ARBITRATION_BITS`.
    """
    size = fd_payload_size(payload_bytes)
    return 28 + 10 + 8 * size + -(-(16 + 8 * size) // 4)


#: Arbitration-phase bits of a CAN FD frame with a standard identifier.
FD_ARBITRATION_BITS = 29


@dataclass(frozen=True)
class CanBusTiming:
    """Bit timing of a CAN bus.

    Parameters
    ----------
    bit_time:
        Duration of one bit in system time units (e.g. 0.5 for a 2 Mbit/s
        bus with microsecond units — the reconstruction used for the
        paper example keeps frame times comparable to its task CETs).
    """

    bit_time: float

    def __post_init__(self):
        if self.bit_time <= 0:
            raise ModelError(f"bit_time must be > 0, got {self.bit_time}")

    @classmethod
    def from_bitrate(cls, bits_per_time_unit: float) -> "CanBusTiming":
        if bits_per_time_unit <= 0:
            raise ModelError("bitrate must be positive")
        return cls(1.0 / bits_per_time_unit)

    def transmission_time_max(self, payload_bytes: int,
                              extended_id: bool = False) -> float:
        """Worst-case wire time of one frame."""
        return frame_bits_max(payload_bytes, extended_id) * self.bit_time

    def transmission_time_min(self, payload_bytes: int,
                              extended_id: bool = False) -> float:
        """Best-case wire time of one frame."""
        return frame_bits_min(payload_bytes, extended_id) * self.bit_time

    def fd_transmission_time_max(self, payload_bytes: int,
                                 data_bit_time: float = None) -> float:
        """Worst-case wire time of a CAN FD frame.

        CAN FD switches to a faster bit rate for the data phase;
        ``data_bit_time`` defaults to a quarter of the arbitration bit
        time (e.g. 500 kbit/s / 2 Mbit/s).
        """
        if data_bit_time is None:
            data_bit_time = self.bit_time / 4.0
        if data_bit_time <= 0:
            raise ModelError("data_bit_time must be positive")
        return (FD_ARBITRATION_BITS * self.bit_time
                + fd_frame_bits_max(payload_bytes) * data_bit_time)
