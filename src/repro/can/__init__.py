"""CAN bus substrate: bit timing, identifiers, SPNP bus resource."""

from .bus import CanBus
from .identifiers import (
    assign_by_deadline,
    assign_by_period,
    priority_order,
    validate_identifiers,
)
from .timing import (
    CanBusTiming,
    fd_frame_bits_max,
    fd_payload_size,
    frame_bits_max,
    frame_bits_min,
)

__all__ = [
    "CanBus",
    "CanBusTiming",
    "frame_bits_max",
    "frame_bits_min",
    "fd_frame_bits_max",
    "fd_payload_size",
    "validate_identifiers",
    "assign_by_deadline",
    "assign_by_period",
    "priority_order",
]
