"""CAN bus as a system resource.

Glue between the bit-timing model and the system graph: a CAN bus is an
SPNP-scheduled resource (frames arbitrate by identifier, transmissions
are non-preemptive) whose tasks are frames with transmission times from
:class:`~repro.can.timing.CanBusTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..analysis.spnp import SPNPScheduler
from ..system.model import Resource, System
from .timing import CanBusTiming


@dataclass
class CanBus:
    """A CAN bus definition: name + bit timing (+ optional util limit)."""

    name: str
    timing: CanBusTiming
    utilization_limit: float = 1.0

    @classmethod
    def from_bitrate(cls, name: str, bits_per_time_unit: float,
                     utilization_limit: float = 1.0) -> "CanBus":
        return cls(name, CanBusTiming.from_bitrate(bits_per_time_unit),
                   utilization_limit)

    def install(self, system: System) -> Resource:
        """Register this bus as an SPNP resource on *system*."""
        scheduler = SPNPScheduler(utilization_limit=self.utilization_limit)
        return system.add_resource(self.name, scheduler)

    def frame_time(self, payload_bytes: int,
                   extended_id: bool = False) -> Tuple[float, float]:
        """(best, worst) transmission time for a payload size."""
        return (self.timing.transmission_time_min(payload_bytes,
                                                  extended_id),
                self.timing.transmission_time_max(payload_bytes,
                                                  extended_id))
