"""CAN identifier handling and priority assignment.

On CAN the frame identifier *is* the priority: lower identifiers win
arbitration.  This module validates identifier sets and offers two
classic priority-assignment helpers for the frame set of a bus:

* :func:`assign_by_deadline` — deadline-monotonic identifier ordering
  (frames with tighter latency requirements get lower IDs).
* :func:`assign_by_period` — rate-monotonic ordering on the frame cycle
  time (ties broken by name for determinism).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .._errors import ModelError

#: Highest valid standard (11-bit) identifier.
MAX_STANDARD_ID = 0x7FF
#: Highest valid extended (29-bit) identifier.
MAX_EXTENDED_ID = 0x1FFF_FFFF


def validate_identifiers(ids: "Dict[str, int]",
                         extended: bool = False) -> None:
    """Check uniqueness and range of a frame→identifier assignment."""
    limit = MAX_EXTENDED_ID if extended else MAX_STANDARD_ID
    seen: "Dict[int, str]" = {}
    for frame, ident in ids.items():
        if not 0 <= ident <= limit:
            raise ModelError(
                f"frame {frame}: identifier {ident:#x} outside "
                f"0..{limit:#x}")
        if ident in seen:
            raise ModelError(
                f"frames {seen[ident]} and {frame} share identifier "
                f"{ident:#x}")
        seen[ident] = frame


def assign_by_deadline(deadlines: "Dict[str, float]",
                       base_id: int = 0x100) -> "Dict[str, int]":
    """Deadline-monotonic identifier assignment (tight deadline → low ID)."""
    ordered = sorted(deadlines.items(), key=lambda kv: (kv[1], kv[0]))
    return {name: base_id + rank for rank, (name, _) in enumerate(ordered)}


def assign_by_period(periods: "Dict[str, float]",
                     base_id: int = 0x100) -> "Dict[str, int]":
    """Rate-monotonic identifier assignment (short period → low ID)."""
    ordered = sorted(periods.items(), key=lambda kv: (kv[1], kv[0]))
    return {name: base_id + rank for rank, (name, _) in enumerate(ordered)}


def priority_order(ids: "Dict[str, int]") -> "List[str]":
    """Frame names from highest to lowest arbitration priority."""
    return [name for name, _ in sorted(ids.items(),
                                       key=lambda kv: (kv[1], kv[0]))]
