"""Campaign reporting: text rendering, JSON, and the bench artefact.

One campaign produces three artefacts:

* ``report.json`` in the cache directory — the full
  :meth:`~repro.soak.campaign.CampaignReport.to_dict` payload,
* a human-readable summary (:func:`render_report`) with the
  per-contract coverage table (pass / violation / skip per contract —
  a profile that silently never exercises a contract is visible as an
  all-skip row),
* ``BENCH_soak.json`` — the campaign throughput wrapped in the same
  schema-versioned provenance envelope every other benchmark emits, so
  ``benchmarks/bench_history.py record``/``check`` track
  ``soak.samples_per_sec`` alongside the compile/batch/serve metrics.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .campaign import CampaignReport
from .contracts import PASS, SKIP, VIOLATION, all_contracts

BENCH_SCHEMA = "repro-bench/1"
BENCH_NAME = "BENCH_soak.json"
REPORT_NAME = "report.json"


def _bench_host() -> str:
    env = os.environ.get("BENCH_HOST")
    if env:
        return env
    try:
        return socket.gethostname()
    except OSError:  # pragma: no cover - no hostname available
        return "unknown"


def _bench_git_sha() -> str:
    env = os.environ.get("BENCH_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _bench_timestamp() -> float:
    env = os.environ.get("BENCH_TIMESTAMP")
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return time.time()


def bench_envelope(report: CampaignReport) -> "Dict[str, Any]":
    """The ``BENCH_soak.json`` document for one campaign."""
    return {
        "schema": BENCH_SCHEMA,
        "bench": "soak",
        "host": _bench_host(),
        "git_sha": _bench_git_sha(),
        "timestamp": _bench_timestamp(),
        "payload": {
            "profile": report.profile,
            "seed": report.seed,
            "samples": report.samples,
            "cached": report.cached,
            "violations": report.violation_count,
            "wall_seconds": report.wall,
            "samples_per_sec": report.samples_per_sec,
        },
    }


def write_artifacts(report: CampaignReport,
                    bench_dir: Optional[str] = None
                    ) -> "List[Path]":
    """Write ``report.json`` (cache dir) and ``BENCH_soak.json``."""
    written = []
    report_path = Path(report.cache_dir) / REPORT_NAME
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True),
        encoding="utf-8")
    written.append(report_path)

    out_dir = Path(bench_dir or os.environ.get("BENCH_OUT_DIR", "."))
    bench_path = out_dir / BENCH_NAME
    bench_path.write_text(
        json.dumps(bench_envelope(report), indent=2, sort_keys=True),
        encoding="utf-8")
    written.append(bench_path)
    return written


def render_report(report: CampaignReport) -> str:
    """Human-readable campaign summary with the coverage table."""
    lines = [
        f"soak campaign '{report.profile}' (seed {report.seed})",
        f"  {report.samples} samples in {report.wall:.1f}s "
        f"({report.samples_per_sec:.2f} samples/s, "
        f"{report.cached} cached, {report.errors} errored)",
    ]
    if report.resumed_from:
        lines.append(f"  resumed past index {report.resumed_from - 1}")
    lines.append(f"  violations: {report.violation_count}")

    lines.append("  contract coverage (pass / violation / skip):")
    counts = report.contract_counts
    for contract in all_contracts():
        row = counts.get(contract.id, {})
        p = row.get(PASS, 0)
        v = row.get(VIOLATION, 0)
        s = row.get(SKIP, 0)
        flag = "  <-- VIOLATED" if v else (
            "  (never exercised)" if p == 0 and s > 0 else "")
        lines.append(f"    {contract.id:<28} {p:>5} / {v:>3} / {s:>4}"
                     f"{flag}")

    for record in report.violations:
        lines.append(
            f"  VIOLATION {record['contract']} at sample "
            f"{record['index']} (kind={record['kind']}, "
            f"seed={record['seed']})")
        if record.get("detail"):
            lines.append(f"    {record['detail']}")
        if record.get("shrunk_tasks") is not None:
            lines.append(
                f"    shrunk to {record['shrunk_tasks']} task(s)")
        if record.get("bundle"):
            lines.append(f"    bundle: {record['bundle']}")
            lines.append(
                f"    repro:  python -m repro soak replay "
                f"{record['bundle']}")
    return "\n".join(lines)
