"""``repro.soak`` — randomized burn-in campaigns over a contract matrix.

The soak layer turns the engine's correctness claims into first-class,
machine-checked :class:`~repro.soak.contracts.Contract` objects and
hammers them with seeded random systems:

* :mod:`repro.soak.contracts` — the invariant matrix (conservativeness
  vs simulation, envelope containment, HEM dominance, path
  bit-identity, blame/degrade soundness, fault monotonicity);
* :mod:`repro.soak.oracle` — per-sample evidence gathering and the
  ``soak_sample`` batch job kind;
* :mod:`repro.soak.campaign` — the crash-resumable campaign loop,
  triage bundles, profiles;
* :mod:`repro.soak.shrink` — delta-debugging of violating samples;
* :mod:`repro.soak.report` — coverage tables and bench artefacts;
* :mod:`repro.soak.cli` — ``python -m repro soak``.

See ``docs/contracts/INVARIANTS_INDEX.md`` for the contract registry.
"""

from .campaign import (
    SOAK_PROFILES,
    CampaignReport,
    load_bundle,
    replay_bundle,
    run_campaign,
    write_bundle,
)
from .contracts import (
    Contract,
    all_contracts,
    contract_ids,
    get_contract,
    register_contract,
)
from .oracle import (
    Evidence,
    SampleSpec,
    evaluate_sample,
    evaluate_system,
    gather_evidence,
)
from .shrink import ShrinkResult, shrink_system

__all__ = [
    "SOAK_PROFILES",
    "CampaignReport",
    "Contract",
    "Evidence",
    "SampleSpec",
    "ShrinkResult",
    "all_contracts",
    "contract_ids",
    "evaluate_sample",
    "evaluate_system",
    "gather_evidence",
    "get_contract",
    "load_bundle",
    "register_contract",
    "replay_bundle",
    "run_campaign",
    "shrink_system",
    "write_bundle",
]
