"""Randomized burn-in campaigns over the batch engine.

A campaign is an open-ended, seeded stream of soak samples pushed
through :class:`~repro.batch.executor.BatchRunner` in chunks until a
time or sample budget runs out.  Each sample is a ``soak_sample`` job
(:mod:`repro.soak.oracle`) whose payload carries only deterministic
coordinates — ``(profile, campaign seed, index)`` fix the sample kind
and seed, the system is regenerated inside the job — so job keys are
content-addressed and stable across runs.  That single property gives
crash-resumability for free: ``--resume`` keeps the
:class:`~repro.batch.store.ResultStore`, re-derives the identical job
list, and the runner serves every finished index from the cache while
the campaign continues counting where the killed run stopped; no
sample id can ever be duplicated.

Per-sample stalls are bounded by the job-level ``SIGALRM`` watchdog
plus a :class:`~repro.resilience.retry.RetryPolicy`; a diverging fixed
point inside a sample is already bounded by the analysis' own
iteration cap and :class:`~repro.resilience.guards.DivergenceGuard`
machinery underneath ``analyze_system``.

Violating samples are auto-shrunk (:mod:`repro.soak.shrink`) and
dumped as self-contained triage bundles under
``<cache_dir>/bundles/``: serialised minimal system + sample
coordinates + contract id + the exact repro command.

Progress streams over the observability bus as ``soak`` events (plus
the runner's own ``sweep``/``job`` lifecycle), and the campaign's
counters — ``soak.samples``, ``soak.violations``, ``soak.shrinks``,
per-contract pass counts — live in the ordinary metrics registry, so
``repro top --follow`` and the serve daemon's ``/metrics`` endpoint
expose a running soak without extra wiring.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs as _obs
from .._errors import ModelError
from ..batch.executor import BatchRunner, make_backend
from ..batch.jobs import Job, JobResult
from ..batch.store import ResultStore
from ..obs.bus import BUS as _BUS
from ..obs.openmetrics import labeled
from ..resilience.retry import RetryPolicy
from ..system.serialize import system_to_dict
from .contracts import PASS, SKIP, VIOLATION
from .oracle import (
    KIND_GATEWAY,
    KIND_GRAPH,
    SampleSpec,
    build_sample_system,
)
from .shrink import shrink_system

#: Default cache root for soak campaigns.
DEFAULT_CACHE_ROOT = ".repro-soak"

#: Samples submitted to the runner per chunk (budget check cadence).
DEFAULT_CHUNK = 8

#: Per-sample wall-time watchdog (seconds).
DEFAULT_SAMPLE_TIMEOUT = 60.0

#: Campaign profiles: named sample mixes over verified spaces.
#:
#: ``kinds`` is the cycle of sample kinds (index-deterministic);
#: ``config`` is passed through to :class:`~repro.soak.oracle.
#: SampleSpec` (graph space bounds, simulation horizon, fault ladder,
#: contract subset).
SOAK_PROFILES: "Dict[str, Dict[str, object]]" = {
    # Small, fast, converges for every seed: the CI gate profile.
    "smoke": {
        "kinds": [KIND_GRAPH, KIND_GRAPH, KIND_GRAPH, KIND_GATEWAY],
        "config": {"faults": 2},
        "chunk": DEFAULT_CHUNK,
        "timeout": DEFAULT_SAMPLE_TIMEOUT,
    },
    # Wider topologies, every scheduling policy, deeper HEM nesting.
    "nightly": {
        "kinds": [KIND_GRAPH, KIND_GRAPH, KIND_GRAPH, KIND_GATEWAY],
        "config": {
            "faults": 3,
            "horizon_periods": 6.0,
            "space": {
                "max_resources": 4,
                "max_sources": 5,
                "max_chain": 4,
                "policies": ["spp", "spnp", "edf",
                             "round_robin", "tdma"],
            },
            "max_signals": 8,
            "max_nesting": 2,
        },
        "chunk": DEFAULT_CHUNK,
        "timeout": 2 * DEFAULT_SAMPLE_TIMEOUT,
    },
    # Analysis-only gateway pairs: cheap HEM-vs-flat dominance mining.
    "gateway": {
        "kinds": [KIND_GATEWAY],
        "config": {"max_signals": 8, "max_nesting": 2},
        "chunk": 2 * DEFAULT_CHUNK,
        "timeout": DEFAULT_SAMPLE_TIMEOUT,
    },
}


def sample_job(profile: str, campaign_seed: int, index: int,
               config: "Dict[str, object]", kinds: "List[str]",
               timeout: float) -> Job:
    """The deterministic job for sample *index* of a campaign.

    The sample seed is drawn from a generator keyed by the full
    campaign coordinates, so two campaigns (or two profiles) never
    share a sample stream, yet every process rebuilding the job for
    ``(profile, seed, index)`` gets the identical key.
    """
    kind = kinds[index % len(kinds)]
    rng = random.Random(f"soak:{profile}:{campaign_seed}:{index}")
    payload = {
        "kind": kind,
        "seed": rng.getrandbits(31),
        "index": index,
        "campaign": {"profile": profile, "seed": campaign_seed},
        "config": dict(config),
    }
    return Job("soak_sample", payload,
               label=f"{profile}[{index}] {kind}", timeout=timeout)


# ----------------------------------------------------------------------
# triage bundles
# ----------------------------------------------------------------------
def bundle_dir(cache_dir: Path, contract: str, index: int) -> Path:
    return Path(cache_dir) / "bundles" / f"{contract}-i{index}"


def write_bundle(cache_dir: Path, contract: str, data: dict,
                 shrink_result=None) -> Path:
    """Persist one self-contained triage bundle and return its path."""
    spec = SampleSpec(kind=data["kind"], seed=data["seed"],
                      config=dict(data.get("config", {})))
    if shrink_result is not None:
        system_dict = shrink_result.system
        shrunk = {"original_tasks": shrink_result.original_tasks,
                  "shrunk_tasks": shrink_result.shrunk_tasks,
                  "evals": shrink_result.evals,
                  "removed": shrink_result.removed,
                  "outcome": shrink_result.outcome}
    else:
        system_dict = system_to_dict(build_sample_system(spec))
        shrunk = None
    directory = bundle_dir(cache_dir, contract, data.get("index", 0))
    directory.mkdir(parents=True, exist_ok=True)
    bundle = {
        "schema": "repro-soak-bundle/1",
        "contract": contract,
        "kind": spec.kind,
        "seed": spec.seed,
        "config": dict(spec.config),
        "index": data.get("index"),
        "campaign": data.get("campaign", {}),
        "detail": next((o["detail"] for o in data.get("outcomes", [])
                        if o["contract"] == contract), ""),
        "system": system_dict,
        "shrink": shrunk,
        "repro": f"python -m repro soak replay {directory}",
    }
    path = directory / "bundle.json"
    path.write_text(json.dumps(bundle, indent=2, sort_keys=True),
                    encoding="utf-8")
    return directory


def load_bundle(path) -> dict:
    """Read a bundle written by :func:`write_bundle`."""
    path = Path(path)
    if path.is_dir():
        path = path / "bundle.json"
    bundle = json.loads(path.read_text(encoding="utf-8"))
    if bundle.get("schema") != "repro-soak-bundle/1":
        raise ModelError(f"{path} is not a soak triage bundle")
    return bundle


def replay_bundle(path) -> "Dict[str, str]":
    """Re-evaluate a bundle's contract against its stored system."""
    from ..system.serialize import system_from_dict
    from .oracle import evaluate_system

    bundle = load_bundle(path)
    spec = SampleSpec(kind=KIND_GRAPH, seed=int(bundle["seed"]),
                      config=dict(bundle.get("config", {})))
    system = system_from_dict(bundle["system"])
    return evaluate_system(system, spec, bundle["contract"])


# ----------------------------------------------------------------------
# campaign state and loop
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Aggregate outcome of one :func:`run_campaign` call."""

    profile: str
    seed: int
    cache_dir: str
    samples: int = 0
    cached: int = 0
    errors: int = 0
    violations: "List[dict]" = field(default_factory=list)
    bundles: "List[str]" = field(default_factory=list)
    contract_counts: "Dict[str, Dict[str, int]]" = field(
        default_factory=dict)
    wall: float = 0.0
    resumed_from: int = 0

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    @property
    def samples_per_sec(self) -> float:
        return self.samples / self.wall if self.wall > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "cache_dir": self.cache_dir,
            "samples": self.samples,
            "cached": self.cached,
            "errors": self.errors,
            "violations": self.violations,
            "violation_count": self.violation_count,
            "bundles": self.bundles,
            "contracts": self.contract_counts,
            "wall": self.wall,
            "samples_per_sec": self.samples_per_sec,
            "resumed_from": self.resumed_from,
        }


def _next_index(store: ResultStore) -> int:
    """One past the highest sample index the store has seen."""
    highest = -1
    for result in store.results():
        index = result.data.get("index")
        if isinstance(index, int) and index > highest:
            highest = index
    return highest + 1


def _count_outcomes(report: CampaignReport, data: dict) -> None:
    for outcome in data.get("outcomes", []):
        by_status = report.contract_counts.setdefault(
            outcome["contract"],
            {PASS: 0, VIOLATION: 0, SKIP: 0})
        by_status[outcome["status"]] = \
            by_status.get(outcome["status"], 0) + 1


def run_campaign(profile: str, *, minutes: Optional[float] = None,
                 samples: Optional[int] = None, seed: int = 0,
                 cache_dir: Optional[str] = None, resume: bool = False,
                 shrink: bool = True, workers: int = 0,
                 progress=None) -> CampaignReport:
    """Run one burn-in campaign until its budget is spent.

    Exactly one of ``minutes`` / ``samples`` bounds the run (both may
    be given; whichever trips first wins; with neither, one chunk runs
    — a single smoke round).  ``resume=False`` clears the cache;
    ``resume=True`` keeps it, serves finished indices from the store,
    and continues the index stream where the previous run stopped.
    """
    if profile not in SOAK_PROFILES:
        raise ModelError(
            f"unknown soak profile {profile!r} "
            f"(known: {', '.join(sorted(SOAK_PROFILES))})")
    spec = SOAK_PROFILES[profile]
    kinds = list(spec["kinds"])
    config = dict(spec["config"])
    chunk = int(spec.get("chunk", DEFAULT_CHUNK))
    timeout = float(spec.get("timeout", DEFAULT_SAMPLE_TIMEOUT))

    cache_dir = cache_dir or f"{DEFAULT_CACHE_ROOT}/{profile}-s{seed}"
    store = ResultStore(cache_dir)
    if not resume:
        store.clear()
    runner = BatchRunner(
        store=store, backend=make_backend(workers),
        retry=RetryPolicy(max_attempts=2))

    report = CampaignReport(profile=profile, seed=seed,
                            cache_dir=str(cache_dir))
    report.resumed_from = _next_index(store) if resume else 0

    deadline = (time.monotonic() + minutes * 60.0
                if minutes is not None else None)

    metrics = _obs.metrics() if _obs.enabled else None
    if _BUS.active:
        _BUS.publish({"type": "soak", "phase": "start",
                      "profile": profile, "seed": seed,
                      "resumed_from": report.resumed_from,
                      "cache_dir": str(cache_dir)})

    # The index stream always restarts at 0: sample jobs are
    # content-addressed, so on resume every index the killed run
    # finished is served from the store in microseconds and the first
    # unfinished index executes — continuation without bookkeeping.
    index = 0
    t0 = time.perf_counter()
    try:
        while True:
            if samples is not None and index >= samples:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if samples is None and deadline is None and index >= chunk:
                break  # no budget given: one smoke chunk
            take = (chunk if samples is None
                    else min(chunk, samples - index))
            jobs = [sample_job(profile, seed, index + i, config,
                               kinds, timeout)
                    for i in range(take)]
            chunk_report = runner.run(jobs)
            for job in jobs:
                result = chunk_report.result_for(job)
                if result is None:
                    continue
                _fold_result(report, result, job, metrics,
                             cache_dir=Path(cache_dir), shrink=shrink,
                             cached=job.key in chunk_report.cached)
                if progress is not None:
                    progress(report, result)
            index += take
    finally:
        report.wall = time.perf_counter() - t0
        store.close()
        if _BUS.active:
            _BUS.publish({"type": "soak", "phase": "end",
                          "profile": profile, "seed": seed,
                          "samples": report.samples,
                          "violations": report.violation_count,
                          "wall": report.wall})
    return report


def _fold_result(report: CampaignReport, result: JobResult, job: Job,
                 metrics, *, cache_dir: Path, shrink: bool,
                 cached: bool) -> None:
    """Account one finished sample; shrink + bundle new violations."""
    if cached:
        report.cached += 1
    report.samples += 1
    if metrics is not None:
        metrics.counter("soak.samples").inc()
    if not result.ok:
        report.errors += 1
        if metrics is not None:
            metrics.counter("soak.errors").inc()
        return
    data = result.data
    _count_outcomes(report, data)
    if metrics is not None:
        for outcome in data.get("outcomes", []):
            if outcome["status"] == PASS:
                metrics.counter(labeled(
                    "soak.contract_pass",
                    contract=outcome["contract"])).inc()
    violated = data.get("violations", [])
    if _BUS.active:
        _BUS.publish({"type": "soak", "phase": "sample",
                      "index": data.get("index"),
                      "kind": data.get("kind"),
                      "seed": data.get("seed"),
                      "cached": cached,
                      "violations": list(violated)})
    if not violated:
        return
    if metrics is not None:
        metrics.counter("soak.violations").inc(len(violated))
    spec = SampleSpec(kind=data["kind"], seed=data["seed"],
                      config=dict(data.get("config", job.payload.get(
                          "config", {}))))
    for contract in violated:
        detail = next((o["detail"] for o in data["outcomes"]
                       if o["contract"] == contract), "")
        record = {"contract": contract, "index": data.get("index"),
                  "kind": data["kind"], "seed": data["seed"],
                  "detail": detail}
        existing = bundle_dir(cache_dir, contract,
                              data.get("index", 0))
        if (existing / "bundle.json").exists():
            # A previous (killed or resumed-over) run already triaged
            # this violation; don't shrink the same sample twice.
            record["bundle"] = str(existing)
            report.bundles.append(str(existing))
            report.violations.append(record)
            continue
        shrink_result = None
        if shrink and data["kind"] == KIND_GRAPH:
            try:
                shrink_result = shrink_system(
                    build_sample_system(spec), spec, contract)
                record["shrunk_tasks"] = shrink_result.shrunk_tasks
                if metrics is not None:
                    metrics.counter("soak.shrinks").inc()
            except Exception as exc:  # triage must never sink the run
                record["shrink_error"] = f"{type(exc).__name__}: {exc}"
        try:
            bundle_data = dict(data)
            bundle_data["config"] = dict(spec.config)
            directory = write_bundle(cache_dir, contract, bundle_data,
                                     shrink_result)
            record["bundle"] = str(directory)
            report.bundles.append(str(directory))
        except Exception as exc:
            record["bundle_error"] = f"{type(exc).__name__}: {exc}"
        report.violations.append(record)
        if _BUS.active:
            _BUS.publish({"type": "soak", "phase": "violation",
                          **{k: record.get(k) for k in
                             ("contract", "index", "kind", "seed",
                              "bundle")}})
