"""The differential oracle: gather evidence once, judge many contracts.

One soak sample is a seeded system draw.  The oracle runs it through
every engine path the contract matrix compares — strict analysis,
degrade mode, compiled and lazy curve evaluation, the incremental memo,
bounded simulations under worst-case and randomized arrivals, a
blame-instrumented run, and an optional fault-injection ladder — and
collects everything into one :class:`Evidence` object.  Contracts
(:mod:`repro.soak.contracts`) are pure predicates over that evidence,
so each expensive engine invocation happens exactly once per sample no
matter how many contracts read it.

The ``soak_sample`` job kind wraps :func:`evaluate_sample` for the
batch engine: payloads carry only ``(kind, seed, config, index)`` —
the system itself is regenerated deterministically, which keeps job
keys small, makes every sample id content-addressed (no duplicates on
resume), and lets a triage bundle reproduce the draw from coordinates
alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs as _obs
from .._errors import AnalysisError, ModelError
from ..analysis.memo import AnalysisMemo
from ..batch.jobs import register_job_kind
from ..eventmodels import compile as _compile
from ..examples_lib.synth import GraphSpace, synth_system, synth_task_graph
from ..resilience.faultinject import (
    FaultPlan,
    check_monotone_conservativeness,
)
from ..sim.generators import random_jitter_arrivals, worst_case_arrivals
from ..sim.system_sim import simulate_system
from ..system.model import System
from ..system.propagation import analyze_system, output_models
from .contracts import all_contracts, get_contract

#: Sample kinds.
KIND_GRAPH = "graph"      # randomized task graph — simulatable
KIND_GATEWAY = "gateway"  # hem/flat gateway pair — analysis only

#: Default longest trace window the envelope check inspects.
DEFAULT_ENVELOPE_N_MAX = 64

#: Default simulation horizon in multiples of the longest source period.
DEFAULT_HORIZON_PERIODS = 4.0

#: Errors that mean "this sample cannot be analysed", not "the oracle
#: is broken" — recorded as evidence, never raised out of a sample.
_ANALYSIS_ERRORS = (AnalysisError, ModelError)


@dataclass(frozen=True)
class SampleSpec:
    """Deterministic coordinates of one soak sample."""

    kind: str
    seed: int
    config: "Dict[str, object]" = field(default_factory=dict)

    def graph_space(self) -> GraphSpace:
        space = self.config.get("space")
        return GraphSpace.from_dict(space) if space else GraphSpace()


@dataclass
class Evidence:
    """Everything the oracle observed about one sample.

    ``None`` fields mean the corresponding engine path was not (or
    could not be) exercised; contracts turn that into ``skip``.
    """

    kind: str
    seed: int
    system: Optional[System] = None
    strict: Optional[object] = None
    strict_error: str = ""
    degrade: Optional[object] = None
    degrade_error: str = ""
    compiled: Optional[object] = None
    lazy: Optional[object] = None
    memo_result: Optional[object] = None
    sims: "Dict[str, object]" = field(default_factory=dict)
    output_models: "Optional[Dict[str, object]]" = None
    envelope_n_max: int = DEFAULT_ENVELOPE_N_MAX
    blame_failures: "Optional[List[str]]" = None
    blame_checked: int = 0
    hem_pair: "Optional[Tuple[object, object, List[str]]]" = None
    fault_findings: "Optional[List[dict]]" = None


def build_sample_system(spec: SampleSpec) -> System:
    """The (primary) system a spec describes, regenerated from seed."""
    if spec.kind == KIND_GRAPH:
        return synth_task_graph(spec.seed, spec.graph_space())
    if spec.kind == KIND_GATEWAY:
        hem, _flat = build_gateway_pair(spec)
        return hem
    raise ModelError(f"unknown sample kind {spec.kind!r}")


def gateway_params(spec: SampleSpec) -> "Dict[str, object]":
    """Seeded gateway dimensions (n_signals, n_frames, jitter, nesting)."""
    rng = random.Random(f"soak-gateway:{spec.seed}")
    n_signals = rng.randint(2, int(spec.config.get("max_signals", 6)))
    n_frames = rng.randint(1, min(3, n_signals))
    jitter_frac = round(rng.uniform(0.0, float(
        spec.config.get("gateway_jitter_frac", 0.3))), 3)
    nesting = rng.choice([0, 0, 0, 1, 1, 2])
    max_nesting = int(spec.config.get("max_nesting", 2))
    return {"n_signals": n_signals, "n_frames": n_frames,
            "jitter_frac": jitter_frac,
            "nesting": min(nesting, max_nesting), "seed": spec.seed}


def build_gateway_pair(spec: SampleSpec) -> "Tuple[System, System]":
    params = gateway_params(spec)
    common = dict(n_signals=params["n_signals"],
                  n_frames=params["n_frames"],
                  jitter_frac=params["jitter_frac"],
                  nesting=params["nesting"], seed=params["seed"])
    return (synth_system(variant="hem", **common),
            synth_system(variant="flat", **common))


# ----------------------------------------------------------------------
# evidence gathering
# ----------------------------------------------------------------------
def _try_analyze(system: System, **kwargs):
    """(result, error_text) — analysis failures become evidence."""
    try:
        return analyze_system(system, **kwargs), ""
    except _ANALYSIS_ERRORS as exc:
        return None, f"{type(exc).__name__}: {exc}"


def _compiled_lazy_pair(system: System):
    """Analyse once with compiled curves, once fully lazy."""
    prev = _compile.enabled
    try:
        _compile.configure(enabled=True)
        compiled, err = _try_analyze(system)
        if compiled is None:
            return None, None
        _compile.configure(enabled=False)
        lazy, err = _try_analyze(system)
        return compiled, lazy
    finally:
        _compile.configure(enabled=prev)


def _blame_evidence(system: System) -> "Tuple[Optional[List[str]], int]":
    """Run one obs-instrumented analysis and check every attached blame
    decomposition.  Returns (failures, checked) — (None, 0) when the
    sample could not be analysed at all."""
    enabled_before = _obs.enabled
    if not enabled_before:
        _obs.configure(enabled=True)
    try:
        result, err = _try_analyze(system)
        if result is None:
            return None, 0
        failures: "List[str]" = []
        checked = 0
        for rr in result.resource_results.values():
            for tr in rr.task_results.values():
                if tr.blame is None:
                    continue
                checked += 1
                try:
                    tr.blame.check()
                except AssertionError as exc:
                    failures.append(f"{tr.name}: {exc}")
        return failures, checked
    finally:
        if not enabled_before:
            _obs.configure(enabled=enabled_before)


def _simulate(system: System, spec: SampleSpec, ev: Evidence) -> None:
    horizon_periods = float(spec.config.get(
        "horizon_periods", DEFAULT_HORIZON_PERIODS))
    horizon = horizon_periods * max(
        src.model.period for src in system.sources.values())
    models = {name: src.model for name, src in system.sources.items()}

    arrivals = {name: worst_case_arrivals(model, horizon)
                for name, model in models.items()}
    ev.sims["worst"] = simulate_system(system, arrivals, horizon)

    rng = random.Random(f"soak-arrivals:{spec.seed}")
    arrivals = {
        name: random_jitter_arrivals(
            model, horizon,
            rng=random.Random(rng.getrandbits(32)))
        for name, model in models.items()}
    ev.sims["random"] = simulate_system(system, arrivals, horizon)


def gather_evidence(spec: SampleSpec) -> Evidence:
    """Exercise every engine path the contract matrix compares."""
    ev = Evidence(kind=spec.kind, seed=spec.seed,
                  envelope_n_max=int(spec.config.get(
                      "envelope_n_max", DEFAULT_ENVELOPE_N_MAX)))

    if spec.kind == KIND_GATEWAY:
        hem, flat = build_gateway_pair(spec)
        system = hem
        flat_result, _flat_err = _try_analyze(flat)
    elif spec.kind == KIND_GRAPH:
        system = synth_task_graph(spec.seed, spec.graph_space())
        flat_result = None
    else:
        raise ModelError(f"unknown sample kind {spec.kind!r}")
    ev.system = system

    ev.strict, ev.strict_error = _try_analyze(system)
    ev.degrade, ev.degrade_error = _try_analyze(
        system, on_failure="degrade")

    if ev.strict is not None:
        ev.compiled, ev.lazy = _compiled_lazy_pair(system)
        ev.memo_result, _memo_err = _try_analyze(
            system, memo=AnalysisMemo())
        ev.blame_failures, ev.blame_checked = _blame_evidence(system)
        if spec.kind == KIND_GATEWAY and flat_result is not None:
            tasks = sorted(system.tasks)
            ev.hem_pair = (ev.strict, flat_result, tasks)
        if spec.kind == KIND_GRAPH:
            try:
                ev.output_models = output_models(system, ev.strict)
            except _ANALYSIS_ERRORS:
                ev.output_models = None
            _simulate(system, spec, ev)
            if spec.config.get("faults"):
                plan = FaultPlan.sample(
                    system, seed=spec.seed,
                    n_faults=int(spec.config.get("n_faults", 2)),
                    max_magnitude=float(
                        spec.config.get("fault_magnitude", 0.3)))
                ev.fault_findings = check_monotone_conservativeness(
                    system, [FaultPlan(), plan])
    return ev


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate_sample(spec: SampleSpec,
                    contract_ids: "Optional[List[str]]" = None
                    ) -> "Dict[str, object]":
    """Gather evidence for *spec* and evaluate the contract matrix.

    Returns a JSON-compatible dict: one outcome per contract plus the
    sample coordinates — the ``data`` of a ``soak_sample`` job.
    """
    contracts = (all_contracts() if contract_ids is None
                 else [get_contract(cid) for cid in contract_ids])
    ev = gather_evidence(spec)
    outcomes = [c.evaluate(ev) for c in contracts]
    violations = [o["contract"] for o in outcomes
                  if o["status"] == "violation"]
    data = {
        "kind": spec.kind,
        "seed": spec.seed,
        "outcomes": outcomes,
        "violations": violations,
        "tasks": len(ev.system.tasks) if ev.system is not None else 0,
        "analyzed": ev.strict is not None,
    }
    if ev.strict_error:
        data["strict_error"] = ev.strict_error
    return data


def evaluate_system(system: System, spec: SampleSpec,
                    contract_id: str) -> "Dict[str, str]":
    """Evaluate one contract against an explicit *system* (the shrink
    loop's predicate: same seed-derived stimuli, candidate topology)."""
    contract = get_contract(contract_id)
    ev = Evidence(kind=KIND_GRAPH, seed=spec.seed, system=system,
                  envelope_n_max=int(spec.config.get(
                      "envelope_n_max", DEFAULT_ENVELOPE_N_MAX)))
    ev.strict, ev.strict_error = _try_analyze(system)
    ev.degrade, ev.degrade_error = _try_analyze(
        system, on_failure="degrade")
    if ev.strict is not None:
        ev.compiled, ev.lazy = _compiled_lazy_pair(system)
        ev.memo_result, _err = _try_analyze(system, memo=AnalysisMemo())
        ev.blame_failures, ev.blame_checked = _blame_evidence(system)
        try:
            ev.output_models = output_models(system, ev.strict)
        except _ANALYSIS_ERRORS:
            ev.output_models = None
        try:
            _simulate(system, spec, ev)
        except _ANALYSIS_ERRORS:
            ev.sims = {}
        if spec.config.get("faults"):
            plan = FaultPlan.sample(
                system, seed=spec.seed,
                n_faults=int(spec.config.get("n_faults", 2)),
                max_magnitude=float(
                    spec.config.get("fault_magnitude", 0.3)))
            ev.fault_findings = check_monotone_conservativeness(
                system, [FaultPlan(), plan])
    return contract.evaluate(ev)


@register_job_kind("soak_sample")
def _run_soak_sample(payload: "Dict[str, object]") -> "Dict[str, object]":
    """One burn-in sample: regenerate, gather evidence, judge contracts.

    Payload: ``kind``, ``seed``, ``index``, ``campaign`` (profile name
    + campaign seed, part of the identity so two campaigns never share
    sample ids), optional ``config`` (space/horizon/faults/contracts).
    """
    spec = SampleSpec(kind=str(payload["kind"]),
                      seed=int(payload["seed"]),
                      config=dict(payload.get("config", {})))
    wanted = payload.get("config", {}).get("contracts")
    data = evaluate_sample(spec, contract_ids=wanted)
    data["index"] = payload.get("index")
    return data
