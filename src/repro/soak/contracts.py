"""The soak contract matrix: first-class invariant objects.

A :class:`Contract` states one invariant the engine must uphold on
*every* sample a burn-in campaign draws — conservativeness of analytic
bounds against simulation, dominance of HEM over flat modeling, and
bit-identity of the engine's internal acceleration paths (compiled
curves, incremental memo) against their reference paths.  Each contract
carries an id, a prose statement, a severity, a pointer into
``docs/contracts/``, and a check function over the
:class:`~repro.soak.oracle.Evidence` the oracle gathered for a sample.

Checks return one outcome dict per contract::

    {"contract": <id>, "status": "pass" | "violation" | "skip",
     "detail": <str>}

``skip`` means the sample does not exercise the contract (e.g. the
HEM-dominance contract on a task-graph sample); skips are counted in
the campaign's coverage table so a profile that silently never
exercises a contract is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .._errors import ModelError

#: Severity vocabulary, most severe first.
SEVERITY_CRITICAL = "critical"  # the paper's claim itself is broken
SEVERITY_MAJOR = "major"        # an engine equivalence/soundness bug
SEVERITIES = (SEVERITY_CRITICAL, SEVERITY_MAJOR)

PASS = "pass"
VIOLATION = "violation"
SKIP = "skip"

#: Slack for float comparisons of response-time bounds.
BOUND_EPS = 1e-6


@dataclass(frozen=True)
class Contract:
    """One registered invariant.

    Attributes
    ----------
    id:
        Stable kebab-case identifier (the key in triage bundles, the
        metrics label, and the row anchor in the invariants index).
    statement:
        One-sentence prose statement of the invariant.
    severity:
        One of :data:`SEVERITIES`.
    doc:
        Repo-relative pointer into ``docs/contracts/``.
    check:
        ``Evidence -> (status, detail)`` predicate.
    """

    id: str
    statement: str
    severity: str
    doc: str
    check: Callable[["object"], Tuple[str, str]]

    def evaluate(self, evidence) -> Dict[str, str]:
        status, detail = self.check(evidence)
        if status not in (PASS, VIOLATION, SKIP):
            raise ModelError(
                f"contract {self.id}: check returned invalid status "
                f"{status!r}")
        return {"contract": self.id, "status": status, "detail": detail}


_REGISTRY: "Dict[str, Contract]" = {}


def register_contract(contract: Contract) -> Contract:
    """Register *contract* (ids must be unique)."""
    if contract.id in _REGISTRY:
        raise ModelError(f"duplicate contract id {contract.id!r}")
    if contract.severity not in SEVERITIES:
        raise ModelError(
            f"contract {contract.id}: unknown severity "
            f"{contract.severity!r}")
    _REGISTRY[contract.id] = contract
    return contract


def all_contracts() -> "List[Contract]":
    return [_REGISTRY[cid] for cid in sorted(_REGISTRY)]


def contract_ids() -> "List[str]":
    return sorted(_REGISTRY)


def get_contract(contract_id: str) -> Contract:
    contract = _REGISTRY.get(contract_id)
    if contract is None:
        raise ModelError(
            f"unknown contract {contract_id!r} "
            f"(known: {', '.join(contract_ids())})")
    return contract


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------
def _check_wcrt_sim_conservative(ev) -> Tuple[str, str]:
    if ev.strict is None:
        return SKIP, "strict analysis unavailable"
    if not ev.sims:
        return SKIP, "sample not simulated"
    worst_gap = None
    for mode, run in ev.sims.items():
        for task in run.responses.tasks():
            bound = ev.strict.wcrt(task)
            if bound is None:
                continue
            observed = run.responses.worst_case(task)
            if observed > bound + BOUND_EPS:
                return VIOLATION, (
                    f"task {task}: simulated worst response "
                    f"{observed:.6g} exceeds analytic WCRT {bound:.6g} "
                    f"under {mode} arrivals")
            gap = bound - observed
            if worst_gap is None or gap < worst_gap:
                worst_gap = gap
    return PASS, (f"min analytic headroom {worst_gap:.6g}"
                  if worst_gap is not None else "no comparable task")


def _check_envelope_containment(ev) -> Tuple[str, str]:
    if ev.strict is None or ev.output_models is None:
        return SKIP, "strict analysis unavailable"
    if not ev.sims:
        return SKIP, "sample not simulated"
    checked = 0
    for mode, run in ev.sims.items():
        for task, bound in ev.output_models.items():
            stream = f"out.{task}"
            if run.trace.count(stream) < 2:
                continue
            checked += 1
            if not run.trace.check_conservative(
                    stream, bound, n_max=ev.envelope_n_max):
                return VIOLATION, (
                    f"stream {stream}: observed events packed tighter "
                    f"than the propagated δ⁻ bound under {mode} "
                    f"arrivals")
    if not checked:
        return SKIP, "no output stream produced two events"
    return PASS, f"{checked} stream/mode envelopes contained"


def _check_hem_dominates_flat(ev) -> Tuple[str, str]:
    if ev.hem_pair is None:
        return SKIP, "sample has no hem/flat gateway pair"
    hem, flat, tasks = ev.hem_pair
    for task in tasks:
        h, f = hem.wcrt(task), flat.wcrt(task)
        if h is None or f is None:
            continue
        if h > f + BOUND_EPS:
            return VIOLATION, (
                f"task {task}: HEM bound {h:.6g} exceeds flat bound "
                f"{f:.6g} — hierarchical modeling must never lose")
    return PASS, f"HEM bounds dominate on {len(tasks)} tasks"


def _results_identical(a, b) -> "Tuple[bool, str]":
    """Bit-identity of two SystemResults (responses and trajectory)."""
    if a.iterations != b.iterations:
        return False, (f"iteration counts differ: "
                       f"{a.iterations} != {b.iterations}")
    a_tasks = {name: tr for rr in a.resource_results.values()
               for name, tr in rr.task_results.items()}
    b_tasks = {name: tr for rr in b.resource_results.values()
               for name, tr in rr.task_results.items()}
    if set(a_tasks) != set(b_tasks):
        return False, "task sets differ"
    for name, ta in a_tasks.items():
        tb = b_tasks[name]
        if ta.r_max != tb.r_max or ta.r_min != tb.r_min:
            return False, (
                f"task {name}: ({ta.r_min!r}, {ta.r_max!r}) != "
                f"({tb.r_min!r}, {tb.r_max!r})")
    return True, f"{len(a_tasks)} tasks bit-identical"


def _check_compiled_lazy_identical(ev) -> Tuple[str, str]:
    if ev.compiled is None or ev.lazy is None:
        return SKIP, "compiled/lazy pair unavailable"
    same, detail = _results_identical(ev.compiled, ev.lazy)
    return (PASS if same else VIOLATION), detail


def _check_memo_cold_identical(ev) -> Tuple[str, str]:
    if ev.strict is None or ev.memo_result is None:
        return SKIP, "memoised run unavailable"
    same, detail = _results_identical(ev.strict, ev.memo_result)
    return (PASS if same else VIOLATION), detail


def _check_blame_sums_to_bound(ev) -> Tuple[str, str]:
    if ev.blame_failures is None:
        return SKIP, "no blame-instrumented run"
    if ev.blame_failures:
        return VIOLATION, "; ".join(ev.blame_failures[:3])
    if not ev.blame_checked:
        return SKIP, "analysis attached no blame decompositions"
    return PASS, f"{ev.blame_checked} decompositions sum to their bound"


def _check_degrade_certified_sound(ev) -> Tuple[str, str]:
    if ev.degrade is None:
        return SKIP, ("degraded analysis unavailable"
                      + (f": {ev.degrade_error}" if ev.degrade_error
                         else ""))
    outcome = ev.degrade
    if ev.strict is not None:
        # Strict succeeded: degrade mode must not invent degradation
        # and must reproduce the strict fixed point exactly.
        if outcome.degraded:
            failed = [name for name, rh in outcome.resources.items()
                      if not rh.ok]
            return VIOLATION, (
                f"strict analysis converged but degrade mode "
                f"quarantined {', '.join(sorted(failed))}")
        same, detail = _results_identical(ev.strict, outcome.result)
        if not same:
            return VIOLATION, f"degrade result diverges: {detail}"
        return PASS, "degrade mode reproduces the strict fixed point"
    # Strict failed: the degraded outcome must admit it and document
    # every conservative substitution with a certificate.
    if not outcome.degraded:
        return VIOLATION, (
            f"strict analysis failed ({ev.strict_error}) but the "
            f"degraded outcome claims full health")
    degraded_tasks = [
        name for rr in outcome.result.resource_results.values()
        for name, tr in rr.task_results.items() if tr.degraded]
    if not outcome.certificates and not degraded_tasks:
        return VIOLATION, (
            "degraded outcome carries neither certificates nor "
            "degraded task bounds")
    return PASS, (
        f"{len(outcome.certificates)} certificates, "
        f"{len(degraded_tasks)} degraded tasks documented")


def _check_fault_monotone(ev) -> Tuple[str, str]:
    if ev.fault_findings is None:
        return SKIP, "no fault ladder injected"
    if ev.fault_findings:
        first = ev.fault_findings[0]
        return VIOLATION, (
            f"task {first['task']}: WCRT shrank from "
            f"{first['wcrt_before']:.6g} to {first['wcrt_after']:.6g} "
            f"after adding faults {first['added_faults']}")
    return PASS, "WCRTs non-decreasing along the fault ladder"


#: The registered matrix, in severity-then-id order of docs/contracts.
register_contract(Contract(
    id="wcrt-sim-conservative",
    statement="For every task, the analytic WCRT upper-bounds the "
              "worst response observed in any simulation of the same "
              "system.",
    severity=SEVERITY_CRITICAL,
    doc="docs/contracts/wcrt-sim-conservative.md",
    check=_check_wcrt_sim_conservative))

register_contract(Contract(
    id="envelope-containment",
    statement="Observed output event traces stay inside the analytic "
              "δ⁻ envelope propagated for their port (η⁺/δ⁻ "
              "containment).",
    severity=SEVERITY_CRITICAL,
    doc="docs/contracts/envelope-containment.md",
    check=_check_envelope_containment))

register_contract(Contract(
    id="hem-dominates-flat",
    statement="On paired gateway systems, per-task WCRT bounds of the "
              "HEM variant never exceed those of the flat variant.",
    severity=SEVERITY_CRITICAL,
    doc="docs/contracts/hem-dominates-flat.md",
    check=_check_hem_dominates_flat))

register_contract(Contract(
    id="fault-monotone-conservative",
    statement="Adding faults to a system never decreases any cleanly "
              "analysed task's WCRT (monotone conservativeness under "
              "fault injection).",
    severity=SEVERITY_CRITICAL,
    doc="docs/contracts/fault-monotone-conservative.md",
    check=_check_fault_monotone))

register_contract(Contract(
    id="compiled-lazy-identical",
    statement="Analysis with compiled event-model curves is "
              "bit-identical (responses and iteration count) to the "
              "lazy reference path.",
    severity=SEVERITY_MAJOR,
    doc="docs/contracts/compiled-lazy-identical.md",
    check=_check_compiled_lazy_identical))

register_contract(Contract(
    id="memo-cold-identical",
    statement="Analysis through the incremental memo is bit-identical "
              "to a cold run of the same system.",
    severity=SEVERITY_MAJOR,
    doc="docs/contracts/memo-cold-identical.md",
    check=_check_memo_cold_identical))

register_contract(Contract(
    id="blame-sums-to-bound",
    statement="Every WCRT blame decomposition's terms sum exactly to "
              "the reported busy time and bound.",
    severity=SEVERITY_MAJOR,
    doc="docs/contracts/blame-sums-to-bound.md",
    check=_check_blame_sums_to_bound))

register_contract(Contract(
    id="degrade-certified-sound",
    statement="Degrade mode reproduces the strict fixed point when "
              "strict analysis succeeds, and otherwise reports "
              "degradation with certificates or widened task bounds.",
    severity=SEVERITY_MAJOR,
    doc="docs/contracts/degrade-certified-sound.md",
    check=_check_degrade_certified_sound))
