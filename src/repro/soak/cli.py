"""``python -m repro soak`` — burn-in campaigns and bundle replay.

Usage::

    python -m repro soak smoke --minutes 1 --seed 7
    python -m repro soak nightly --samples 500 --resume
    python -m repro soak replay .repro-soak/smoke-s7/bundles/<id>

Campaign mode runs the named :data:`~repro.soak.campaign.
SOAK_PROFILES` profile until its ``--minutes`` / ``--samples`` budget
is spent, prints the coverage report, writes ``report.json`` and
``BENCH_soak.json``, and exits non-zero under ``--fail-on-violation``
when any contract was violated.  Replay mode loads one triage bundle
and re-evaluates its contract against the stored (shrunk) system —
exit 0 means the violation reproduced.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .. import obs as _obs
from .campaign import SOAK_PROFILES, replay_bundle, run_campaign
from .contracts import VIOLATION
from .report import render_report, write_artifacts


def _replay_main(args) -> int:
    outcome = replay_bundle(args.bundle)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    if outcome["status"] == VIOLATION:
        print(f"reproduced: contract {outcome['contract']} still "
              f"violated", file=sys.stderr)
        return 0
    print(f"NOT reproduced: contract {outcome['contract']} reports "
          f"{outcome['status']}", file=sys.stderr)
    return 1


def soak_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro soak",
        description="Randomized burn-in campaigns over the contract "
                    "matrix, with auto-shrinking failure triage.")
    sub = parser.add_subparsers(dest="command")

    replay = sub.add_parser(
        "replay", help="re-evaluate one triage bundle")
    replay.add_argument(
        "bundle", help="bundle directory (or bundle.json path)")

    run = sub.add_parser("run", help="run a campaign (default)")
    run.add_argument(
        "profile", choices=sorted(SOAK_PROFILES),
        help="which campaign profile to run")
    run.add_argument(
        "--minutes", type=float, default=None, metavar="M",
        help="wall-clock budget in minutes")
    run.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="sample-count budget")
    run.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (fixes the whole sample stream)")
    run.add_argument(
        "--resume", action="store_true",
        help="keep the result cache and continue a killed campaign")
    run.add_argument(
        "--cache-dir", default=None,
        help="result cache directory "
             "(default: .repro-soak/<profile>-s<seed>)")
    run.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes (0 = serial)")
    run.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging of violating samples")
    run.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit 1 when any contract was violated")
    run.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the report JSON to PATH")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the progress line")

    argv = list(sys.argv[1:] if argv is None else argv)
    # "soak <profile> ..." is sugar for "soak run <profile> ...".
    if argv and argv[0] not in ("run", "replay", "-h", "--help"):
        argv = ["run"] + argv
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "replay":
        return _replay_main(args)

    _obs.configure(enabled=True, reset=True)

    def progress(report, result) -> None:
        if args.quiet:
            return
        line = (f"\r{report.samples} samples  "
                f"{report.violation_count} violations  "
                f"{report.cached} cached  {report.errors} errors")
        sys.stderr.write(line.ljust(60))
        sys.stderr.flush()

    try:
        report = run_campaign(
            args.profile, minutes=args.minutes, samples=args.samples,
            seed=args.seed, cache_dir=args.cache_dir,
            resume=args.resume, shrink=not args.no_shrink,
            workers=args.workers, progress=progress)
    finally:
        if not args.quiet:
            sys.stderr.write("\n")
        _obs.configure(enabled=False)

    print(render_report(report))
    written = write_artifacts(report)
    for path in written:
        print(f"wrote {path}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if report.errors:
        print(f"{report.errors} sample(s) errored", file=sys.stderr)
        return 1
    if args.fail_on_violation and report.violation_count:
        print(f"{report.violation_count} contract violation(s)",
              file=sys.stderr)
        return 1
    return 0
