"""Auto-shrinking failure triage: minimize a violating soak sample.

When a campaign sample violates a contract, the raw system is rarely
the best artefact to debug — a seeded draw can carry a dozen tasks of
which three matter.  :func:`shrink_system` greedily delta-debugs the
*serialised* system (plain :func:`~repro.system.serialize.
system_to_dict` dicts, so every candidate is a fresh, independent
rebuild): it repeatedly tries to drop one task together with its
downstream closure, keeping any removal under which the contract still
reports ``violation``, until no single removal preserves the failure
or the evaluation budget runs out.  Orphaned sources and empty
resources are pruned along the way, so the minimal system is
self-contained and loads with :func:`~repro.system.serialize.
system_from_dict`.

The predicate is :func:`repro.soak.oracle.evaluate_system` — the same
evidence gathering and the same contract the campaign used, applied to
the candidate topology with the sample's seed-derived stimuli — so a
shrunk system fails for the *same reason* as the original, not merely
for some reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..system.serialize import system_from_dict, system_to_dict
from .contracts import VIOLATION
from .oracle import SampleSpec, evaluate_system

#: Evaluation budget: one evaluation per removal attempt.
DEFAULT_MAX_EVALS = 200


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    system: "Dict[str, object]"        # minimal serialised system
    contract: str
    outcome: "Dict[str, str]"          # contract outcome on the minimum
    original_tasks: int
    shrunk_tasks: int
    evals: int
    removed: "List[str]" = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return self.shrunk_tasks < self.original_tasks


def _downstream_closure(tasks: "Dict[str, dict]",
                        root: str) -> "List[str]":
    """*root* plus every task reachable from it through ``inputs``."""
    doomed = {root}
    changed = True
    while changed:
        changed = False
        for name, task in tasks.items():
            if name in doomed:
                continue
            if any(inp in doomed for inp in task["inputs"]):
                doomed.add(name)
                changed = True
    return sorted(doomed)


def _without_tasks(data: "Dict[str, object]",
                   doomed: "List[str]") -> "Dict[str, object]":
    """A candidate system dict with *doomed* tasks removed and orphaned
    sources / empty resources pruned."""
    tasks = {name: dict(task)
             for name, task in data["tasks"].items()
             if name not in doomed}
    referenced = {inp for task in tasks.values()
                  for inp in task["inputs"]}
    sources = {name: model for name, model in data["sources"].items()
               if name in referenced}
    used_resources = {task["resource"] for task in tasks.values()}
    resources = {name: sched
                 for name, sched in data["resources"].items()
                 if name in used_resources}
    return {"name": data["name"], "sources": sources,
            "resources": resources, "tasks": tasks,
            "junctions": dict(data.get("junctions", {}))}


def _still_violates(candidate: "Dict[str, object]", spec: SampleSpec,
                    contract_id: str) -> "Optional[Dict[str, str]]":
    """The contract outcome if *candidate* still violates, else None.

    A candidate that fails to rebuild (validation error) simply does
    not reproduce the violation — it is rejected, never raised.
    """
    if not candidate["tasks"] or not candidate["sources"]:
        return None
    try:
        system = system_from_dict(candidate)
    except Exception:
        return None
    outcome = evaluate_system(system, spec, contract_id)
    return outcome if outcome["status"] == VIOLATION else None


def shrink_system(system, spec: SampleSpec, contract_id: str,
                  max_evals: int = DEFAULT_MAX_EVALS) -> ShrinkResult:
    """Greedily minimize *system* while *contract_id* still violates.

    Accepts a live :class:`~repro.system.model.System` or an already
    serialised dict.  Returns the smallest system found (the original,
    unchanged, when no removal preserves the violation), the contract
    outcome observed on it, and the removal trail.
    """
    data = (system if isinstance(system, dict)
            else system_to_dict(system))
    original_tasks = len(data["tasks"])
    outcome = {"contract": contract_id, "status": VIOLATION,
               "detail": "original sample (not re-evaluated)"}
    evals = 0
    removed: "List[str]" = []

    progress = True
    while progress and evals < max_evals:
        progress = False
        # Largest closure first: dropping a whole chain in one step
        # shrinks fastest; leaf tasks are retried on later passes.
        for name in sorted(data["tasks"],
                           key=lambda n: -len(_downstream_closure(
                               data["tasks"], n))):
            if evals >= max_evals:
                break
            doomed = _downstream_closure(data["tasks"], name)
            if len(doomed) >= len(data["tasks"]):
                continue  # would leave no tasks at all
            candidate = _without_tasks(data, doomed)
            evals += 1
            still = _still_violates(candidate, spec, contract_id)
            if still is not None:
                data = candidate
                outcome = still
                removed.extend(doomed)
                progress = True
                break  # restart over the smaller system

    return ShrinkResult(system=data, contract=contract_id,
                        outcome=outcome,
                        original_tasks=original_tasks,
                        shrunk_tasks=len(data["tasks"]),
                        evals=evals, removed=removed)
