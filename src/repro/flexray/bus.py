"""FlexRay static-segment analysis: time-triggered slots as a scheduler.

Each frame owns one static slot per communication cycle; queued
transmissions drain one per cycle.  The busy-window form (worst case:
the activation just misses its slot's transmission start):

    B(q) = (cycle - L + C) + (q - 1) * cycle
           └ wait for next slot ┘  └ one slot per later instance ┘

with L the slot length and C the frame's wire time (C <= L).  The frame
stream a receiver sees is exactly periodic at the cycle length with the
slot's offset — offset-aware receivers can exploit that via
:func:`repro.eventmodels.offset_join`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .._errors import ModelError, NotSchedulableError
from ..analysis.busy_window import multi_activation_loop
from ..analysis.interface import Scheduler, TaskSpec
from ..analysis.results import ResourceResult, TaskResult
from .timing import FlexRayConfig


class FlexRayStaticScheduler(Scheduler):
    """Static-segment FlexRay 'scheduling' analysis.

    Tasks are frames; ``TaskSpec.slot`` is interpreted as the *static
    slot index* (an integer 0 .. n_static_slots - 1).  ``c_max`` is the
    frame's wire time and must fit the slot.
    """

    policy = "flexray-static"

    def __init__(self, config: FlexRayConfig):
        self.config = config

    def analyze(self, tasks: Sequence[TaskSpec],
                resource_name: str = "flexray") -> ResourceResult:
        self.check_unique_names(tasks)
        config = self.config
        assigned: "Dict[int, str]" = {}
        for t in tasks:
            if t.slot is None or t.slot != int(t.slot):
                raise ModelError(
                    f"frame {t.name}: needs an integer static slot index")
            slot = int(t.slot)
            config.slot_offset(slot)  # range check
            if slot in assigned:
                raise ModelError(
                    f"frames {assigned[slot]} and {t.name} share static "
                    f"slot {slot}")
            assigned[slot] = t.name
            if t.c_max > config.slot_length + 1e-12:
                raise ModelError(
                    f"frame {t.name}: wire time {t.c_max} exceeds the "
                    f"static slot length {config.slot_length}")

        results = {}
        for t in tasks:
            results[t.name] = self._analyze_frame(t, resource_name)
        util = self.total_load(tasks)
        return ResourceResult(resource_name, util, results)

    def _analyze_frame(self, task: TaskSpec,
                       resource_name: str) -> TaskResult:
        config = self.config
        cycle = config.cycle_length

        # Rate admission: more than one activation per cycle on average
        # can never drain.
        rate = task.event_model.load()
        if rate * cycle > 1.0 + 1e-9:
            raise NotSchedulableError(
                f"{resource_name}/{task.name}: {rate * cycle:.3f} "
                f"activations per cycle exceed one static slot per "
                f"cycle", resource=resource_name)

        wait = cycle - config.slot_length

        def busy_time(q: int) -> float:
            return wait + (q - 1) * cycle + task.c_max

        r_max, busy_times, q_max = multi_activation_loop(
            task.event_model, busy_time)
        return TaskResult(name=task.name, r_min=task.c_min, r_max=r_max,
                          busy_times=busy_times, q_max=q_max,
                          details={"slot": float(int(task.slot)),
                                   "cycle": cycle})
