"""FlexRay frame and cycle timing.

FlexRay's static segment divides each communication cycle into equal
static slots; a frame assigned to slot *s* is transmitted once per cycle
at offset ``s * slot_length``.  Physical-layer framing (FlexRay protocol
spec v2.1):

* transmission start sequence (TSS): 3..15 bit times (we use a
  configurable value, default 5),
* frame start sequence (FSS): 1 bit,
* each byte is preceded by a 2-bit byte start sequence → 10 bits/byte,
* frame end sequence (FES): 2 bits.

A frame consists of a 5-byte header, ``2 * payload_length_words`` bytes
of payload (the payload length field counts 2-byte words), and a 3-byte
trailer CRC — all byte-encoded at 10 bits each.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._errors import ModelError

#: Frame header bytes (protocol constant).
HEADER_BYTES = 5
#: Trailer CRC bytes (protocol constant).
TRAILER_BYTES = 3
#: Maximum payload in 2-byte words (protocol constant).
MAX_PAYLOAD_WORDS = 127


def frame_bits(payload_words: int, tss_bits: int = 5) -> int:
    """Wire bits of one static-segment frame."""
    if not 0 <= payload_words <= MAX_PAYLOAD_WORDS:
        raise ModelError(
            f"payload must be 0..{MAX_PAYLOAD_WORDS} words, got "
            f"{payload_words}")
    if not 3 <= tss_bits <= 15:
        raise ModelError(f"TSS must be 3..15 bits, got {tss_bits}")
    total_bytes = HEADER_BYTES + 2 * payload_words + TRAILER_BYTES
    return tss_bits + 1 + 10 * total_bytes + 2


@dataclass(frozen=True)
class FlexRayConfig:
    """Static-segment configuration of a FlexRay cluster.

    Parameters
    ----------
    cycle_length:
        Communication cycle duration in time units.
    slot_length:
        Duration of one static slot.
    n_static_slots:
        Number of static slots per cycle; the static segment
        (``n_static_slots * slot_length``) must fit in the cycle — the
        remainder models the dynamic segment, symbol window and NIT.
    bit_time:
        Duration of one bit (e.g. 0.1 µs at 10 Mbit/s).
    """

    cycle_length: float
    slot_length: float
    n_static_slots: int
    bit_time: float = 0.1

    def __post_init__(self):
        if self.cycle_length <= 0 or self.slot_length <= 0:
            raise ModelError("cycle and slot lengths must be positive")
        if self.n_static_slots < 1:
            raise ModelError("need at least one static slot")
        if self.bit_time <= 0:
            raise ModelError("bit_time must be positive")
        if self.n_static_slots * self.slot_length > self.cycle_length:
            raise ModelError(
                f"static segment ({self.n_static_slots} x "
                f"{self.slot_length}) exceeds the cycle "
                f"({self.cycle_length})")

    def slot_offset(self, slot: int) -> float:
        """Start offset of a static slot within the cycle."""
        self._check_slot(slot)
        return slot * self.slot_length

    def transmission_time(self, payload_words: int,
                          tss_bits: int = 5) -> float:
        """Wire time of one frame; must fit inside one static slot."""
        t = frame_bits(payload_words, tss_bits) * self.bit_time
        if t > self.slot_length:
            raise ModelError(
                f"frame of {payload_words} words needs {t} time units; "
                f"the static slot is only {self.slot_length}")
        return t

    def max_payload_words(self) -> int:
        """Largest payload that fits the static slot."""
        words = MAX_PAYLOAD_WORDS
        while words >= 0:
            if frame_bits(words) * self.bit_time <= self.slot_length:
                return words
            words -= 1
        raise ModelError("static slot too short for any frame")

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_static_slots:
            raise ModelError(
                f"slot {slot} outside 0..{self.n_static_slots - 1}")
