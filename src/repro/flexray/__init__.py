"""FlexRay static-segment substrate: frame timing and slot analysis."""

from .bus import FlexRayStaticScheduler
from .timing import FlexRayConfig, frame_bits

__all__ = [
    "FlexRayConfig",
    "FlexRayStaticScheduler",
    "frame_bits",
]
