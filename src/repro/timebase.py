"""Time arithmetic helpers shared across the library.

The library represents time as ``float`` in an arbitrary unit (the paper's
example uses a unit consistent with its CET/period tables; we treat it as
microseconds).  ``math.inf`` marks an unbounded maximum distance — e.g. the
delta-plus bound of a *pending* signal stream after frame packing (paper
eq. (8)).

Floating-point comparisons inside fixed-point iterations use an absolute
tolerance :data:`EPS`; all analysis code must compare through
:func:`time_eq` / :func:`time_leq` rather than ``==`` so that accumulated
rounding never flips a convergence test.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Absolute tolerance for time comparisons.
EPS = 1e-9

#: Convenience re-export so call sites do not import :mod:`math` just for inf.
INF = math.inf


def is_finite(t: float) -> bool:
    """Return True if *t* is a finite time value."""
    return math.isfinite(t)


def time_eq(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant equality for time values (inf-aware)."""
    if a == b:  # covers inf == inf and exact matches
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= eps


def time_leq(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant ``a <= b`` for time values."""
    return a <= b + eps


def time_lt(a: float, b: float, eps: float = EPS) -> bool:
    """Tolerant strict ``a < b`` for time values."""
    return a < b - eps


def strict_floor(x: float) -> int:
    """Largest integer *strictly* less than x.

    Used by the closed-form eta-plus of the standard event model: the
    largest ``n`` with ``delta_min(n) < dt`` resolves to a strict-floor of a
    ratio.  ``strict_floor(3.0) == 2`` while ``floor(3.0) == 3``.
    """
    f = math.floor(x)
    if f == x:
        return int(f) - 1
    return int(f)


def strict_ceil(x: float) -> int:
    """Smallest integer *strictly* greater than x."""
    c = math.ceil(x)
    if c == x:
        return int(c) + 1
    return int(c)


def merge_eq(seq_a: Iterable[float], seq_b: Iterable[float],
             eps: float = EPS) -> bool:
    """Elementwise tolerant comparison of two equally long sequences."""
    a = list(seq_a)
    b = list(seq_b)
    if len(a) != len(b):
        return False
    return all(time_eq(x, y, eps) for x, y in zip(a, b))
