"""Stream operations: Θ_τ output models, OR/AND joins, shapers.

These are the ``stream operations`` of the paper's Definition 2 — functions
mapping input event-stream function tuples to output tuples.  They are the
building blocks both of the flat compositional analysis (Richter/SymTA/S
style) and of the hierarchical constructors in :mod:`repro.core`.

Implemented operations
----------------------
``TaskOutputModel`` (Θ_τ)
    The busy-window output-model operation for an analysed task with
    response times in ``[r_min, r_max]`` (paper section 3)::

        δ'⁻(n) = max{ δ⁻(n) - (r⁺ - r⁻),  δ'⁻(n - 1) + r⁻ }
        δ'⁺(n) = δ⁺(n) + (r⁺ - r⁻)

``or_join`` (paper eqs. (3)/(4))
    Exact OR-combination of m streams via pairwise min-max / max-min
    composition over contribution vectors::

        δ⁻_or(n) = min_{Σk_i = n}     max_i δ⁻_i(k_i)
        δ⁺_or(n) = max_{Σk_i = n - 2} min_i δ⁺_i(k_i + 2)

    Pairwise composition is exact because both operators are associative
    over the split of the contribution vector.  The equivalent
    superposition form (η⁺_or = Σ η⁺_i inverted back to δ⁻) is provided as
    :func:`or_join_superposition` and cross-checked in the test suite.

``and_join``
    Jersak's AND-activation: an output event is produced once every input
    queue holds a token; the n-th output occurs no earlier than the
    latest n-th input event, giving ``δ⁻_and(n) = max_i δ⁻_i(n)`` and
    ``δ⁺_and(n) = max_i δ⁺_i(n)``.

``DminShaper``
    Greedy minimum-distance shaper: delays events just enough to enforce a
    spacing of ``d``.  Raises δ⁻ to ``max(δ⁻(n), (n-1)d)``; δ⁺ grows by
    the worst-case shaping backlog delay.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .._errors import ModelError
from ..timebase import INF
from .base import EventModel, NullEventModel
from .curves import CachedModel


# ----------------------------------------------------------------------
# Θ_τ — task output model
# ----------------------------------------------------------------------
class TaskOutputModel(EventModel):
    """Output event model of an analysed task (operation Θ_τ).

    The recursion for δ'⁻ is memoised internally; instances are cheap to
    evaluate repeatedly inside busy windows of downstream resources.
    """

    __slots__ = ("_in", "r_min", "r_max", "_dmin_cache", "name")

    def __init__(self, input_model: EventModel, r_min: float, r_max: float,
                 name: str = "out"):
        if r_min < 0 or r_max < r_min:
            raise ModelError(
                f"need 0 <= r_min <= r_max, got [{r_min}, {r_max}]")
        self._in = input_model
        self.r_min = float(r_min)
        self.r_max = float(r_max)
        self._dmin_cache = {0: 0.0, 1: 0.0}
        self.name = name

    @property
    def input_model(self) -> EventModel:
        return self._in

    @property
    def response_span(self) -> float:
        """r⁺ - r⁻, the jitter added by the task."""
        return self.r_max - self.r_min

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        cached = self._dmin_cache.get(n)
        if cached is not None:
            return cached
        # Fill the memo iteratively to keep deep recursions off the stack.
        start = max(k for k in self._dmin_cache) + 1
        span = self.response_span
        prev = self._dmin_cache[start - 1]
        for k in range(start, n + 1):
            val = max(self._in.delta_min(k) - span, prev + self.r_min)
            self._dmin_cache[k] = val
            prev = val
        return self._dmin_cache[n]

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return self._in.delta_plus(n) + self.response_span

    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        top = max(self._dmin_cache)
        if n_max > top:
            src = self._in.delta_min_block(n_max)
            span = self.response_span
            r_min = self.r_min
            cache = self._dmin_cache
            prev = cache[top]
            for k in range(top + 1, n_max + 1):
                prev = cache[k] = max(src[k] - span, prev + r_min)
        return [self._dmin_cache[k] for k in range(n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        src = self._in.delta_plus_block(n_max)
        span = self.response_span
        out = src[:2]
        out.extend(v + span for v in src[2:])
        return out


# ----------------------------------------------------------------------
# OR-join — paper eqs. (3) and (4)
# ----------------------------------------------------------------------
class _PairwiseOrJoin(EventModel):
    """Exact OR-combination of exactly two event models."""

    __slots__ = ("_a", "_b", "_dmin_cache", "_dplus_cache", "name")

    def __init__(self, a: EventModel, b: EventModel, name: str = "or2"):
        self._a = a
        self._b = b
        self._dmin_cache: dict = {}
        self._dplus_cache: dict = {}
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        cached = self._dmin_cache.get(n)
        if cached is not None:
            return cached
        # eq. (3): min over k of max(δ⁻_a(k), δ⁻_b(n - k)).
        best = INF
        for k in range(0, n + 1):
            cand = max(self._a.delta_min(k), self._b.delta_min(n - k))
            if cand < best:
                best = cand
            if best == 0.0:
                break
        self._dmin_cache[n] = best
        return best

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        cached = self._dplus_cache.get(n)
        if cached is not None:
            return cached
        # eq. (4): max over j_a + j_b = n - 2 of
        #          min(δ⁺_a(j_a + 2), δ⁺_b(j_b + 2)).
        m = n - 2
        best = 0.0
        for j in range(0, m + 1):
            cand = min(self._a.delta_plus(j + 2),
                       self._b.delta_plus(m - j + 2))
            if cand > best:
                best = cand
            if math.isinf(best):
                break
        self._dplus_cache[n] = best
        return best

    # ------------------------------------------------------------------
    # block evaluation: the merge formulation of eqs. (3)/(4)
    # ------------------------------------------------------------------
    # η⁺ of the OR-join is the sum of the input η⁺ functions, so δ⁻_or is
    # the pseudo-inverse of a summed step function: its steps are exactly
    # the multiset union of the input δ⁻ values.  Hence
    #
    #     δ⁻_or(n) = n-th smallest of {δ⁻_a(k) : k >= 1} ∪ {δ⁻_b(k) : k >= 1}
    #     δ⁺_or(n) = (n-1)-th smallest of {δ⁺_a(k) : k >= 2} ∪ {δ⁺_b(k) : k >= 2}
    #
    # Every output value is *selected* from an input array (no arithmetic),
    # so the block results are bit-identical to the per-n contribution-
    # vector optimisation — at O(n) per join level instead of O(n²).
    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        da = self._a.delta_min_block(n_max)
        db = self._b.delta_min_block(n_max)
        out = [0.0] * (n_max + 1)
        cache = self._dmin_cache
        # The merged multiset leads with da[1] = db[1] = 0; out[n] is its
        # n-th smallest element, so consume da[1] up front and take one
        # further element per n.
        i, j = 2, 1
        for n in range(2, n_max + 1):
            if da[i] <= db[j]:
                val = da[i]
                i += 1
            else:
                val = db[j]
                j += 1
            out[n] = cache[n] = val
        return out

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        pa = self._a.delta_plus_block(n_max)
        pb = self._b.delta_plus_block(n_max)
        out = [0.0] * (n_max + 1)
        cache = self._dplus_cache
        i = j = 2
        for n in range(2, n_max + 1):
            if pa[i] <= pb[j]:
                val = pa[i]
                i += 1
            else:
                val = pb[j]
                j += 1
            out[n] = cache[n] = val
        return out


def or_join(models: Sequence[EventModel], name: str = "or") -> EventModel:
    """OR-combination of any number of event streams (paper eqs. (3)/(4)).

    The n-th output event distance is the exact optimum over all
    contribution vectors, computed by folding the exact two-stream join
    (both optimisations are associative over vector splits).  Null streams
    are the neutral element and are dropped.
    """
    active: List[EventModel] = [m for m in models
                                if not isinstance(m, NullEventModel)]
    if not active:
        return NullEventModel()
    if len(active) == 1:
        return active[0]
    combined = active[0]
    for nxt in active[1:]:
        combined = _PairwiseOrJoin(combined, nxt)
    combined.name = name
    return CachedModel(combined, name=name)


class _SuperpositionOrJoin(EventModel):
    """OR-join computed through η-superposition.

    δ⁻_or is the pseudo-inverse of ``η⁺_or(Δt) = Σ_i η⁺_i(Δt)`` and δ⁺_or
    the pseudo-inverse of ``η⁻_or(Δt) = Σ_i η⁻_i(Δt)``.  Mathematically
    equivalent to the contribution-vector formulation; kept as an
    independent implementation for cross-checking and for benchmarking
    the two evaluation strategies against each other.
    """

    _SEARCH_CAP = 1e15

    def __init__(self, models: Sequence[EventModel], name: str = "orsup"):
        if not models:
            raise ModelError("or_join needs at least one input stream")
        self._models = list(models)
        self.name = name

    def eta_plus(self, dt: float) -> int:
        if dt <= 0:
            return 0
        return max(1, sum(m.eta_plus(dt) for m in self._models))

    def eta_min(self, dt: float) -> int:
        if dt < 0:
            return 0
        return sum(m.eta_min(dt) for m in self._models)

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        # δ⁻(n) = inf{Δt : η⁺(Δt) >= n}; η⁺ is a step function, so
        # binary-search the step position.  The tolerance-terminated
        # bisection brackets the step as lo < δ⁻(n) <= hi; a minimum
        # distance must never be *over*estimated, so snap to the low side
        # of the step — the η⁺ re-check guarantees lo is conservative
        # (η⁺(lo) < n means a window of length lo cannot be claimed to
        # separate n events).
        if self.eta_plus(self._SEARCH_CAP) < n:
            return INF
        lo, hi = 0.0, 1.0
        while self.eta_plus(hi) < n:
            lo = hi
            hi *= 2.0
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.eta_plus(mid) >= n:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        # Invariant maintained by the loop: η⁺(lo) < n <= η⁺(hi).
        return lo

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        # δ⁺(n) = sup{Δt : η⁻(Δt) <= n - 2}.  Dual of delta_min: the
        # bisection brackets the step as lo <= δ⁺(n) <= hi, and a maximum
        # distance must never be *under*estimated, so snap to the high
        # side — the η⁻ re-check guarantees hi is conservative
        # (η⁻(hi) > n - 2 means hi lies at or beyond the true supremum).
        if self.eta_min(self._SEARCH_CAP) <= n - 2:
            return INF
        lo, hi = 0.0, 1.0
        while self.eta_min(hi) <= n - 2:
            lo = hi
            hi *= 2.0
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if self.eta_min(mid) <= n - 2:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        # Invariant maintained by the loop: η⁻(lo) <= n - 2 < η⁻(hi).
        return hi


def or_join_superposition(models: Sequence[EventModel],
                          name: str = "orsup") -> EventModel:
    """η-superposition variant of :func:`or_join` (see class docstring)."""
    active = [m for m in models if not isinstance(m, NullEventModel)]
    if not active:
        return NullEventModel()
    if len(active) == 1:
        return active[0]
    return CachedModel(_SuperpositionOrJoin(active, name=name), name=name)


# ----------------------------------------------------------------------
# AND-join
# ----------------------------------------------------------------------
class _AndJoin(EventModel):
    def __init__(self, models: Sequence[EventModel], name: str = "and"):
        self._models = list(models)
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max(m.delta_min(n) for m in self._models)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max(m.delta_plus(n) for m in self._models)

    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        blocks = [m.delta_min_block(n_max) for m in self._models]
        return [max(b[n] for b in blocks) for n in range(n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        blocks = [m.delta_plus_block(n_max) for m in self._models]
        return [max(b[n] for b in blocks) for n in range(n_max + 1)]


def and_join(models: Sequence[EventModel], name: str = "and") -> EventModel:
    """AND-combination: output when every input has produced an event.

    Requires all inputs to have the same long-run rate for bounded
    buffering (Jersak's condition); this function does not enforce the
    rate check — see :func:`repro.system.junctions.check_and_join_rates`.
    """
    if not models:
        raise ModelError("and_join needs at least one input stream")
    if len(models) == 1:
        return models[0]
    return CachedModel(_AndJoin(models, name=name), name=name)


# ----------------------------------------------------------------------
# Shapers
# ----------------------------------------------------------------------
class DminShaper(EventModel):
    """Greedy minimum-distance shaper.

    Events are released in FIFO order, delayed as little as possible such
    that consecutive releases are at least ``d`` apart.  Output bounds::

        δ'⁻(n) = max(δ⁻(n), (n - 1) * d)
        δ'⁺(n) = δ⁺(n) + D_max

    where ``D_max = sup_n [ (n - 1) * d - δ⁻(n) ]⁺`` is the worst-case
    shaping delay of a single event (finite iff the input's long-run rate
    is below ``1/d``).  The δ⁺ bound is conservative: the first event of
    a window may be delayed by up to ``D_max`` while the last is not
    delayed at all.
    """

    def __init__(self, input_model: EventModel, d: float,
                 horizon: int = 10_000, name: str = "shaper"):
        if d < 0:
            raise ModelError(f"shaper distance must be >= 0, got {d}")
        self._in = input_model
        self.d = float(d)
        self._horizon = horizon
        self._max_delay = None
        self.name = name

    @property
    def max_delay(self) -> float:
        """Worst-case delay the shaper adds to a single event."""
        if self._max_delay is None:
            self._max_delay = self._compute_max_delay()
        return self._max_delay

    def _compute_max_delay(self) -> float:
        if self.d == 0.0:
            return 0.0
        rate = self._in.load(accuracy=self._horizon)
        if rate * self.d >= 1.0:
            return INF
        best = 0.0
        n = 2
        while n <= self._horizon:
            lag = (n - 1) * self.d - self._in.delta_min(n)
            if lag > best:
                best = lag
            # once δ⁻ has outrun the shaping line by the current best lag,
            # no later n can produce a larger lag (δ⁻ superadditive with
            # rate > 1/d keeps diverging)
            if self._in.delta_min(n) - (n - 1) * self.d > best:
                break
            n += 1
        return best

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max(self._in.delta_min(n), (n - 1) * self.d)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        dp = self._in.delta_plus(n)
        if math.isinf(dp):
            return INF
        return max(dp + self.max_delay, (n - 1) * self.d)

    def delta_min_block(self, n_max: int) -> list:
        self._check_n(n_max)
        src = self._in.delta_min_block(n_max)
        d = self.d
        out = src[:2]
        out.extend(max(src[n], (n - 1) * d) for n in range(2, n_max + 1))
        return out

    def delta_plus_block(self, n_max: int) -> list:
        self._check_n(n_max)
        src = self._in.delta_plus_block(n_max)
        delay = self.max_delay
        d = self.d
        out = src[:2]
        out.extend(
            INF if math.isinf(dp) else max(dp + delay, (n - 1) * d)
            for n, dp in enumerate(src[2:], start=2))
        return out
