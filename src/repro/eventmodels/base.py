"""Abstract event-model interface: the four characteristic functions.

Following Richter's compositional analysis framework (and the paper's
section 3), an event stream is bounded by four characteristic functions:

``delta_min(n)``  (δ⁻)
    Lower bound on the length of any time interval containing ``n``
    consecutive events of the stream.  Defined for all ``n >= 0`` with
    ``delta_min(0) == delta_min(1) == 0``.

``delta_plus(n)``  (δ⁺)
    Upper bound on the length of the interval spanned by ``n`` consecutive
    events; may be ``inf`` (the stream may stall — e.g. pending signals).

``eta_plus(dt)``  (η⁺)
    Maximum number of events in any half-open time window of length
    ``dt``.  Derived from δ⁻ via the paper's eq. (1):
    ``η⁺(Δt) = max[{n >= 2 : δ⁻(n) < Δt} ∪ {1}]`` for ``Δt > 0`` and 0 for
    ``Δt <= 0``.

``eta_min(dt)``  (η⁻)
    Minimum number of events in any window of length ``dt``, paper eq. (2):
    ``η⁻(Δt) = min{n >= 0 : δ⁺(n + 2) > Δt}``.

Only δ⁻/δ⁺ are abstract; η⁺/η⁻ default to a generic pseudo-inverse using
doubling + binary search, which concrete models may override with closed
forms.  All models are treated as immutable value objects; δ evaluations of
derived models are memoised by the subclasses that need it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from .._errors import ModelError, UnboundedStreamError
from ..timebase import EPS, INF

#: Safety cap for the generic pseudo-inverse searches: a single ``eta_plus``
#: evaluation never considers more events than this.  Windows that would
#: contain more events indicate a modelling error (zero-distance unbounded
#: stream) and raise :class:`UnboundedStreamError`.
MAX_EVENTS = 1_000_000


class EventModel(ABC):
    """Bound on the timing of all event sequences of a stream."""

    # Empty __slots__ here lets the hot derived-model subclasses opt out
    # of per-instance dicts entirely; subclasses that declare no
    # __slots__ still get a __dict__ as usual.
    __slots__ = ()

    #: Short human-readable tag used in reprs and reports.
    name: str = "em"

    # ------------------------------------------------------------------
    # abstract surface
    # ------------------------------------------------------------------
    @abstractmethod
    def delta_min(self, n: int) -> float:
        """δ⁻(n): minimum distance spanned by ``n`` consecutive events."""

    @abstractmethod
    def delta_plus(self, n: int) -> float:
        """δ⁺(n): maximum distance spanned by ``n`` consecutive events."""

    # ------------------------------------------------------------------
    # derived characteristic functions (paper eqs. (1) and (2))
    # ------------------------------------------------------------------
    def eta_plus(self, dt: float) -> int:
        """η⁺(Δt): maximum number of events in a window of length ``dt``."""
        if dt <= 0:
            return 0
        # Largest n >= 1 with delta_min(n) < dt.  delta_min is
        # non-decreasing in n, so exponential search for an upper bracket
        # followed by binary search is exact.
        if not self.delta_min(2) < dt:
            return 1
        lo = 2  # delta_min(lo) < dt holds
        hi = 4
        while self.delta_min(hi) < dt:
            lo = hi
            hi *= 2
            if hi > MAX_EVENTS:
                raise UnboundedStreamError(
                    f"eta_plus({dt!r}) exceeds {MAX_EVENTS} events for "
                    f"{self!r}; the stream has no effective rate limit"
                )
        # invariant: delta_min(lo) < dt <= delta_min(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.delta_min(mid) < dt:
                lo = mid
            else:
                hi = mid
        return lo

    def eta_min(self, dt: float) -> int:
        """η⁻(Δt): minimum number of events in a window of length ``dt``."""
        if dt < 0:
            return 0
        # Smallest n >= 0 with delta_plus(n + 2) > dt.  delta_plus is
        # non-decreasing; if delta_plus(2) > dt already then n = 0.
        if self.delta_plus(2) > dt:
            return 0
        lo = 0  # delta_plus(lo + 2) <= dt holds
        hi = 2
        while not self.delta_plus(hi + 2) > dt:
            lo = hi
            hi *= 2
            if hi > MAX_EVENTS:
                raise UnboundedStreamError(
                    f"eta_min({dt!r}) exceeds {MAX_EVENTS} events for "
                    f"{self!r}"
                )
        # invariant: delta_plus(lo+2) <= dt < delta_plus(hi+2)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.delta_plus(mid + 2) > dt:
                hi = mid
            else:
                lo = mid
        return hi

    # ------------------------------------------------------------------
    # stream statistics
    # ------------------------------------------------------------------
    def load(self, accuracy: int = 1000) -> float:
        """Long-run event rate (events per time unit), estimated from the
        minimum-distance function at a horizon of ``accuracy`` events.

        For a standard event model this converges to ``1 / P``.  The value
        upper-bounds the true long-run rate because δ⁻ lower-bounds the
        true distances.
        """
        n = max(2, accuracy)
        d = self.delta_min(n)
        if d <= 0:
            return INF
        return (n - 1) / d

    def simultaneity(self, cap: int = MAX_EVENTS) -> int:
        """Maximum number of events that can arrive simultaneously, i.e.
        the largest ``n`` with ``delta_min(n) == 0``.

        This is the ``k`` of the paper's Definition 9 (the inner update
        function): events of the packed outer stream that coincide get
        serialised by the frame transmission, shrinking the embedded
        streams' minimum distances by ``(k - 1) * r_min``.
        """
        if self.delta_min(2) > EPS:
            return 1
        lo, hi = 2, 4
        while hi <= cap and self.delta_min(hi) <= EPS:
            lo = hi
            hi *= 2
        if hi > cap and self.delta_min(min(hi, cap)) <= EPS:
            raise UnboundedStreamError(
                f"simultaneity exceeds cap {cap} for {self!r}"
            )
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.delta_min(mid) <= EPS:
                lo = mid
            else:
                hi = mid
        return lo

    def busy_window_event_bound(self, window: float) -> int:
        """Number of activations to examine for a busy window of the given
        length — simply ``eta_plus(window)``, provided for readability at
        analysis call sites."""
        return self.eta_plus(window)

    # ------------------------------------------------------------------
    # block evaluation (batch APIs)
    # ------------------------------------------------------------------
    def delta_min_block(self, n_max: int) -> list:
        """[δ⁻(0), ..., δ⁻(n_max)] in one call.

        The generic implementation is a plain loop; array-backed models
        (:class:`~repro.eventmodels.compile.CompiledEventModel`) override
        it with a prefix slice.  Engine code that needs a δ range —
        convergence checks, serialisation, compilation — should use the
        block APIs rather than per-n virtual calls.
        """
        return [self.delta_min(n) for n in range(n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        """[δ⁺(0), ..., δ⁺(n_max)] in one call (see
        :meth:`delta_min_block`)."""
        return [self.delta_plus(n) for n in range(n_max + 1)]

    # ------------------------------------------------------------------
    # sampling helpers used by reports, figures, and tests
    # ------------------------------------------------------------------
    def delta_min_seq(self, n_max: int) -> list:
        """[δ⁻(0), δ⁻(1), ..., δ⁻(n_max)] as a plain list."""
        return self.delta_min_block(n_max)

    def delta_plus_seq(self, n_max: int) -> list:
        """[δ⁺(0), δ⁺(1), ..., δ⁺(n_max)] as a plain list."""
        return self.delta_plus_block(n_max)

    def eta_plus_series(self, t_max: float, step: float) -> list:
        """Sampled (Δt, η⁺(Δt)) pairs for plotting figures like the
        paper's Figure 4.

        Sample positions are computed as ``i * step`` (not accumulated)
        so float drift over long series cannot shift or drop the final
        sample.
        """
        if step <= 0:
            raise ModelError("step must be positive")
        series = []
        i = 0
        while True:
            t = i * step
            if t > t_max + EPS:
                break
            series.append((t, self.eta_plus(t)))
            i += 1
        return series

    # ------------------------------------------------------------------
    # common validation helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise ModelError(f"event count must be >= 0, got {n}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NullEventModel(EventModel):
    """A stream that never produces any event.

    δ⁻ is infinite for n >= 2 (two events never happen), δ⁺ likewise.
    Useful as the neutral element of OR-joins and for disconnected inputs.
    """

    __slots__ = ()

    name = "null"

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        return 0.0 if n < 2 else INF

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        return 0.0 if n < 2 else INF

    def eta_plus(self, dt: float) -> int:
        return 0

    def eta_min(self, dt: float) -> int:
        return 0

    def load(self, accuracy: int = 1000) -> float:
        return 0.0

    def __eq__(self, other) -> bool:
        return isinstance(other, NullEventModel)

    def __hash__(self) -> int:
        return hash("NullEventModel")


def models_equal(a: EventModel, b: EventModel, n_max: int = 64,
                 eps: float = EPS) -> bool:
    """Tolerant behavioural equality of two event models on a test range.

    Used by the global propagation loop as its convergence criterion: two
    models are considered equal when both δ functions agree for all
    ``n <= n_max``.  Evaluates both models through the block APIs so
    compiled (array-backed) curves are compared by slices rather than
    per-n virtual calls.
    """
    da = a.delta_min_block(n_max)
    db = b.delta_min_block(n_max)
    for n in range(2, n_max + 1):
        if not _feq(da[n], db[n], eps):
            return False
    pa = a.delta_plus_block(n_max)
    pb = b.delta_plus_block(n_max)
    for n in range(2, n_max + 1):
        if not _feq(pa[n], pb[n], eps):
            return False
    return True


def _feq(a: float, b: float, eps: float) -> bool:
    if a == b:
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= eps
