"""Standard event models (SEM): the (P, J, d_min) parameterisation.

Richter's standard event models describe periodic streams with jitter and a
minimum inter-arrival distance:

* ``periodic``            — (P, 0, P)
* ``periodic w/ jitter``  — (P, J, max(P - J, 0)) for J < P
* ``periodic w/ burst``   — (P, J, d_min) for J >= P, d_min > 0
* ``sporadic``            — same δ⁻ family, but δ⁺ unbounded

Closed forms:

    δ⁻(n) = max((n - 1) * P - J, (n - 1) * d_min)       for n >= 2
    δ⁺(n) = (n - 1) * P + J                             for n >= 2

η⁺/η⁻ are overridden with exact closed forms (strict-floor/strict-ceil of
the corresponding ratios); the generic pseudo-inverse of the base class
remains the reference implementation the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._errors import ModelError
from ..timebase import INF, strict_ceil, strict_floor
from .base import EventModel


@dataclass(frozen=True)
class StandardEventModel(EventModel):
    """Periodic-with-jitter-and-minimum-distance event model.

    Parameters
    ----------
    period:
        Mean distance P between events; must be positive.
    jitter:
        Maximum deviation J from the periodic reference; non-negative.
    d_min:
        Minimum distance between any two events.  Defaults to
        ``max(period - jitter, 0)``; a zero d_min means events may
        coincide (a "burst" of simultaneous arrivals).
    sporadic:
        If True the stream may stall: δ⁺(n) = inf for n >= 2.  The δ⁻
        bound (and hence η⁺ / worst-case load) is unchanged.
    """

    period: float
    jitter: float = 0.0
    d_min: float = field(default=None)  # type: ignore[assignment]
    sporadic: bool = False
    name: str = "sem"

    def __post_init__(self):
        if self.period <= 0:
            raise ModelError(f"period must be > 0, got {self.period}")
        if self.jitter < 0:
            raise ModelError(f"jitter must be >= 0, got {self.jitter}")
        if self.d_min is None:
            object.__setattr__(self, "d_min",
                               max(self.period - self.jitter, 0.0))
        if self.d_min < 0:
            raise ModelError(f"d_min must be >= 0, got {self.d_min}")
        if self.d_min > self.period:
            raise ModelError(
                f"d_min ({self.d_min}) may not exceed the period "
                f"({self.period}); the long-run rate would be inconsistent"
            )

    # ------------------------------------------------------------------
    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max((n - 1) * self.period - self.jitter,
                   (n - 1) * self.d_min)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        if self.sporadic:
            return INF
        return (n - 1) * self.period + self.jitter

    # ------------------------------------------------------------------
    # closed-form characteristic functions
    # ------------------------------------------------------------------
    def eta_plus(self, dt: float) -> int:
        if dt <= 0:
            return 0
        # largest n with max((n-1)P - J, (n-1)d) < dt
        bound = strict_floor((dt + self.jitter) / self.period)
        if self.d_min > 0:
            bound = min(bound, strict_floor(dt / self.d_min))
        return max(1, bound + 1)

    def eta_min(self, dt: float) -> int:
        if dt < 0:
            return 0
        if self.sporadic:
            return 0
        # smallest n >= 0 with (n+1)P + J > dt
        n = strict_ceil((dt - self.jitter) / self.period - 1.0)
        return max(0, n)

    def load(self, accuracy: int = 1000) -> float:
        return 1.0 / self.period

    # ------------------------------------------------------------------
    def with_jitter(self, jitter: float) -> "StandardEventModel":
        """Return a copy with a different jitter (d_min recomputed unless a
        burst model, in which case the explicit d_min is preserved)."""
        d_min = self.d_min if self.jitter >= self.period else None
        return StandardEventModel(self.period, jitter, d_min,
                                  sporadic=self.sporadic, name=self.name)

    def __repr__(self) -> str:
        kind = "sporadic" if self.sporadic else "periodic"
        return (f"<SEM {self.name} {kind} P={self.period} J={self.jitter} "
                f"d={self.d_min}>")


def periodic(period: float, name: str = "periodic") -> StandardEventModel:
    """Strictly periodic stream: (P, 0, P)."""
    return StandardEventModel(period, 0.0, name=name)


def periodic_with_jitter(period: float, jitter: float,
                         name: str = "pjd") -> StandardEventModel:
    """Periodic stream with jitter: (P, J, max(P - J, 0))."""
    return StandardEventModel(period, jitter, name=name)


def periodic_with_burst(period: float, jitter: float, d_min: float,
                        name: str = "burst") -> StandardEventModel:
    """Periodic stream with burst: (P, J, d_min); J typically >= P."""
    return StandardEventModel(period, jitter, d_min, name=name)


def sporadic(period: float, jitter: float = 0.0, d_min: float = None,
             name: str = "sporadic") -> StandardEventModel:
    """Sporadic stream: same arrival bound as the periodic model but no
    guarantee that events keep coming (δ⁺ = inf)."""
    return StandardEventModel(period, jitter, d_min, sporadic=True,
                              name=name)
