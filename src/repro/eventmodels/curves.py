"""Curve-based event models: finite δ prefixes with conservative extension.

Arbitrary event streams (measured traces, join outputs, shaped streams) are
represented by finite prefixes of their distance functions plus an
extension rule for event counts beyond the prefix:

* **Additive (default).**  True δ⁻ functions are *superadditive* in the
  sense ``δ⁻(a + b - 1) >= δ⁻(a) + δ⁻(b)`` (split a window of ``a + b - 1``
  events at event ``a``), and δ⁺ functions are *subadditive* in the same
  sense.  Hence for ``n`` beyond the prefix length ``N``::

      q, r such that n - 1 = q * (N - 1) + (r - 1), 2 <= r <= N
      δ⁻(n) >= q * δ⁻(N) + δ⁻(r)        (valid lower bound)
      δ⁺(n) <= q * δ⁺(N) + δ⁺(r)        (valid upper bound)

  i.e. the extension remains a conservative bound for *any* stream that
  satisfies the prefix.

* **Periodic.**  If the stream is known to repeat with ``t_period`` every
  ``n_period`` events, ``δ(n + k * n_period) = δ(n) + k * t_period``
  exactly.

The module also provides :class:`CachedModel`, a generic memoising wrapper
for lazily-evaluated derived models (join outputs, Θ_τ outputs, inner
updates) so repeated busy-window evaluations stay cheap.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError
from ..timebase import INF
from .base import EventModel


def _extend_additive(values: Sequence[float], n: int) -> float:
    """Additive extension of a δ prefix (see module docstring).

    ``values[i]`` holds δ(i) for 0 <= i <= N; requires N >= 2.
    """
    top = len(values) - 1
    if n <= top:
        return values[n]
    if math.isinf(values[top]):
        return INF
    span = top - 1  # events consumed per full block beyond the first
    q, rem = divmod(n - 1, span)
    if rem == 0:
        q -= 1
        rem = span
    r = rem + 1  # 2 <= r <= top
    return q * values[top] + values[r]


def _extend_periodic(values: Sequence[float], n: int,
                     n_period: int, t_period: float) -> float:
    top = len(values) - 1
    if n <= top:
        return values[n]
    k = -((top - n) // n_period)  # ceil((n - top) / n_period)
    base = n - k * n_period
    return values[base] + k * t_period


class CurveEventModel(EventModel):
    """Event model defined by explicit δ⁻ / δ⁺ prefixes.

    Parameters
    ----------
    delta_min_prefix:
        ``[δ⁻(0), δ⁻(1), δ⁻(2), ..., δ⁻(N)]``; the first two entries must
        be 0 and the sequence must be non-decreasing.  Length >= 3.
    delta_plus_prefix:
        Same layout for δ⁺; entries may be ``inf``.  Must dominate the
        δ⁻ prefix pointwise.
    n_period, t_period:
        Optional exact periodic extension (both or neither).  When absent
        the conservative additive extension is used.
    """

    __slots__ = ("_dmin", "_dplus", "_n_period", "_t_period", "name")

    def __init__(self, delta_min_prefix: Sequence[float],
                 delta_plus_prefix: Sequence[float],
                 n_period: Optional[int] = None,
                 t_period: Optional[float] = None,
                 name: str = "curve"):
        dmin = [float(v) for v in delta_min_prefix]
        dplus = [float(v) for v in delta_plus_prefix]
        if len(dmin) < 3 or len(dplus) < 3:
            raise ModelError("curve prefixes need at least δ(0..2)")
        if len(dmin) != len(dplus):
            raise ModelError("δ⁻ and δ⁺ prefixes must have equal length")
        if dmin[0] != 0.0 or dmin[1] != 0.0 or dplus[0] != 0.0 \
                or dplus[1] != 0.0:
            raise ModelError("δ(0) and δ(1) must both be 0")
        for i in range(1, len(dmin)):
            if dmin[i] < dmin[i - 1]:
                raise ModelError(f"δ⁻ prefix not non-decreasing at n={i}")
            if dplus[i] < dplus[i - 1]:
                raise ModelError(f"δ⁺ prefix not non-decreasing at n={i}")
        for i, (lo, hi) in enumerate(zip(dmin, dplus)):
            if lo > hi:
                raise ModelError(
                    f"δ⁻({i}) = {lo} exceeds δ⁺({i}) = {hi}")
        if (n_period is None) != (t_period is None):
            raise ModelError("n_period and t_period must be given together")
        if n_period is not None:
            if n_period < 1 or t_period <= 0:
                raise ModelError("periodic extension needs n_period >= 1 "
                                 "and t_period > 0")
            if n_period > len(dmin) - 2:
                raise ModelError(
                    f"n_period ({n_period}) must not exceed prefix length "
                    f"minus one ({len(dmin) - 2}) or the extension would "
                    f"index below δ(1)")
        self._dmin = dmin
        self._dplus = dplus
        self._n_period = n_period
        self._t_period = t_period
        self.name = name

    # ------------------------------------------------------------------
    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        if self._n_period is not None:
            return _extend_periodic(self._dmin, n, self._n_period,
                                    self._t_period)
        return _extend_additive(self._dmin, n)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        if self._n_period is not None:
            return _extend_periodic(self._dplus, n, self._n_period,
                                    self._t_period)
        return _extend_additive(self._dplus, n)

    @property
    def prefix_length(self) -> int:
        """Largest n covered by the stored prefix."""
        return len(self._dmin) - 1

    def __repr__(self) -> str:
        ext = ("periodic" if self._n_period is not None else "additive")
        return (f"<CurveEM {self.name} N={self.prefix_length} ext={ext}>")


class FunctionEventModel(EventModel):
    """Event model defined directly by callables for δ⁻ and δ⁺.

    Thin adapter used in tests and by generators; the callables receive
    ``n >= 2`` (smaller n short-circuit to 0).
    """

    def __init__(self, delta_min_fn: Callable[[int], float],
                 delta_plus_fn: Callable[[int], float],
                 name: str = "fn"):
        self._dmin_fn = delta_min_fn
        self._dplus_fn = delta_plus_fn
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return self._dmin_fn(n)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return self._dplus_fn(n)


class CachedModel(EventModel):
    """Memoising proxy around another event model.

    Derived models (OR-joins, Θ_τ outputs, inner updates) recompute their
    δ values recursively; busy-window analyses evaluate the same δ(n) many
    times.  Wrapping a derived model in :class:`CachedModel` makes these
    evaluations O(1) after first touch without changing semantics.
    """

    __slots__ = ("_inner", "_dmin_cache", "_dplus_cache", "name")

    def __init__(self, inner: EventModel, name: Optional[str] = None):
        self._inner = inner
        self._dmin_cache: dict = {}
        self._dplus_cache: dict = {}
        self.name = name if name is not None else f"cached({inner.name})"

    @property
    def wrapped(self) -> EventModel:
        """The underlying event model."""
        return self._inner

    def delta_min(self, n: int) -> float:
        v = self._dmin_cache.get(n)
        if v is None:
            if _obs.enabled:
                _obs.metrics().counter("eventmodels.cache.misses").inc()
            v = self._inner.delta_min(n)
            self._dmin_cache[n] = v
        elif _obs.enabled:
            _obs.metrics().counter("eventmodels.cache.hits").inc()
        return v

    def delta_plus(self, n: int) -> float:
        v = self._dplus_cache.get(n)
        if v is None:
            if _obs.enabled:
                _obs.metrics().counter("eventmodels.cache.misses").inc()
            v = self._inner.delta_plus(n)
            self._dplus_cache[n] = v
        elif _obs.enabled:
            _obs.metrics().counter("eventmodels.cache.hits").inc()
        return v

    def delta_min_block(self, n_max: int) -> list:
        cache = self._dmin_cache
        if any(n not in cache for n in range(n_max + 1)):
            block = self._inner.delta_min_block(n_max)
            for n, v in enumerate(block):
                cache.setdefault(n, v)
        return [cache[n] for n in range(n_max + 1)]

    def delta_plus_block(self, n_max: int) -> list:
        cache = self._dplus_cache
        if any(n not in cache for n in range(n_max + 1)):
            block = self._inner.delta_plus_block(n_max)
            for n, v in enumerate(block):
                cache.setdefault(n, v)
        return [cache[n] for n in range(n_max + 1)]

    def __repr__(self) -> str:
        return f"<Cached {self._inner!r}>"


def freeze(model: EventModel, n_max: int = 128,
           name: Optional[str] = None) -> CurveEventModel:
    """Materialise any event model into a :class:`CurveEventModel` by
    sampling its δ prefixes up to ``n_max``.

    The additive extension of the result conservatively bounds the
    original beyond the sampled range (δ⁻ is never overestimated, δ⁺ never
    underestimated), so freezing is always safe for analysis — at the cost
    of some precision in the tail.
    """
    dmin = [model.delta_min(n) for n in range(n_max + 1)]
    dplus = [model.delta_plus(n) for n in range(n_max + 1)]
    return CurveEventModel(dmin, dplus,
                           name=name if name is not None
                           else f"frozen({model.name})")
