"""Curve compilation: flatten derived event-model chains into arrays.

Every global iteration of the compositional fixed point rebuilds the full
derived-model graph — :class:`~repro.eventmodels.operations.TaskOutputModel`
recursions stacked on pairwise OR-join folds stacked on
:class:`~repro.eventmodels.curves.CachedModel` wrappers — so a single
``eta_plus(dt)`` inside a busy window triggers an exponential+binary
search that cascades through O(depth) Python virtual calls, and all
memoisation is thrown away when the next iteration's resolver is built.

This module compiles such chains into **array-backed curves**:

* :func:`compile_model` snapshots any event model into a
  :class:`CompiledEventModel` — a :class:`CurveEventModel` subclass whose
  δ⁻/δ⁺ prefixes are plain lists.  While the source model is retained
  (the default), queries beyond the stored prefix grow the arrays by
  evaluating the source in geometric blocks, so every returned value is
  **exactly** the lazy model's value — analysis results are bit-identical
  with compilation on or off.  A *detached* compiled curve (``keep_source
  =False``) falls back to the conservative additive extension of
  :mod:`repro.eventmodels.curves` (or an exact detected-periodic
  extension, see :func:`compile_model`), so it still *bounds* the
  original: δ⁻ never overestimated, δ⁺ never underestimated.

* η⁺/η⁻ become a single :func:`bisect.bisect` over the prefix instead of
  the generic doubling + binary search through the virtual-call tower,
  and the block APIs (:meth:`EventModel.delta_min_block`) return array
  slices.

* A **structural fingerprint cache** carries compiled curves across
  global iterations: :func:`fingerprint` computes a canonical recursive
  key of a derived chain (operation parameters + input fingerprints), and
  :func:`maybe_compile` reuses the compiled curve whenever the key is
  unchanged — iteration k+1 only recompiles streams whose inputs actually
  moved.  Fingerprints are *semantically exact*: two chains with equal
  fingerprints have identical δ functions, so cache reuse never changes
  results.

Compilation is **on by default**; disable it for the whole process with
the environment variable ``REPRO_COMPILE=0`` or at runtime via
``repro.eventmodels.compile.configure(enabled=False)``.

Observability (when :mod:`repro.obs` is enabled): ``compile.compilations``,
``compile.cache.hits`` / ``compile.cache.misses``, ``compile.extensions``
counters and the ``compile.prefix_length`` histogram.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from math import isinf
from typing import Callable, Dict, Optional, Tuple, Type

from .. import obs as _obs
from .._errors import UnboundedStreamError
from .base import MAX_EVENTS, EventModel, NullEventModel
from .combinators import _IntersectionModel, _UnionModel
from .curves import CachedModel, CurveEventModel
from .operations import (
    DminShaper,
    TaskOutputModel,
    _AndJoin,
    _PairwiseOrJoin,
    _SuperpositionOrJoin,
)
from .standard import StandardEventModel


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: Master switch — compile derived chains inside the analysis engine.
enabled = _env_flag("REPRO_COMPILE", True)

#: Default prefix length sampled at compile time.  33 covers the engine's
#: convergence-check range (``CONVERGENCE_CHECK_N = 32``), which is
#: evaluated for every propagated model anyway, so the eager sampling is
#: effectively free; deeper queries grow the prefix on demand.
n_hint = int(os.environ.get("REPRO_COMPILE_N_HINT", "33"))

#: Minimum derived-chain depth for :func:`maybe_compile` to bother:
#: depth 1 is a leaf model (standard/curve — already O(1) to evaluate),
#: depth 2 is one operation over a leaf.
min_depth = int(os.environ.get("REPRO_COMPILE_MIN_DEPTH", "2"))

#: Capacity of the global fingerprint cache (compiled curves).
cache_size = int(os.environ.get("REPRO_COMPILE_CACHE_SIZE", "4096"))


class CompilationCache:
    """LRU cache mapping structural fingerprints to compiled curves.

    Keys are the hashable tuples produced by :func:`fingerprint`; equal
    keys imply semantically identical chains, so sharing one compiled
    curve between them (and across global iterations) is exact.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, CompiledEventModel]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> "Optional[CompiledEventModel]":
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, model: "CompiledEventModel") -> None:
        self._entries[key] = model
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Hit/miss counters and occupancy, for reports and benchmarks."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries), "maxsize": self.maxsize}

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global cache; cleared via :func:`configure`.
_cache = CompilationCache(cache_size)


def cache() -> CompilationCache:
    """The process-global compilation cache."""
    return _cache


def configure(*, enabled: Optional[bool] = None,
              n_hint: Optional[int] = None,
              min_depth: Optional[int] = None,
              cache_size: Optional[int] = None,
              reset_cache: bool = False) -> None:
    """Adjust curve compilation for the whole process.

    ``configure(enabled=False)`` is the single switch that restores the
    fully lazy evaluation path (equivalently set ``REPRO_COMPILE=0``
    before the process starts).
    """
    module = globals()
    if enabled is not None:
        module["enabled"] = enabled
    if n_hint is not None:
        module["n_hint"] = max(3, n_hint)
    if min_depth is not None:
        module["min_depth"] = min_depth
    if cache_size is not None:
        module["cache_size"] = cache_size
        _cache.maxsize = cache_size
    if reset_cache:
        _cache.clear()


# ----------------------------------------------------------------------
# the compiled curve
# ----------------------------------------------------------------------
class CompiledEventModel(CurveEventModel):
    """Array-backed snapshot of an event model.

    Constructed by :func:`compile_model`; not validated like a
    user-supplied :class:`CurveEventModel` — the prefix is sampled
    verbatim from the source model, whose consistency is its own
    responsibility.

    With the source attached (the default), values beyond the stored
    prefix are obtained by growing the arrays from the source in
    geometric blocks — *exact*, never approximated.  Detached, the
    inherited conservative extension of :class:`CurveEventModel` applies.
    """

    __slots__ = ("_source", "_fp")

    def __init__(self, delta_min_prefix, delta_plus_prefix,
                 source: "Optional[EventModel]" = None,
                 n_period: Optional[int] = None,
                 t_period: Optional[float] = None,
                 fp: Optional[tuple] = None,
                 name: str = "compiled"):
        # Deliberately bypass CurveEventModel.__init__: sampled prefixes
        # need no re-validation, and overload-shaped chains may violate
        # the δ⁻ <= δ⁺ cross-check that user input must satisfy.
        self._dmin = list(delta_min_prefix)
        self._dplus = list(delta_plus_prefix)
        self._n_period = n_period
        self._t_period = t_period
        self._source = source
        self._fp = fp
        self.name = name

    # ------------------------------------------------------------------
    @property
    def source(self) -> "Optional[EventModel]":
        """The lazy model this curve was compiled from (None if detached)."""
        return self._source

    @property
    def fingerprint_key(self) -> Optional[tuple]:
        """Structural fingerprint of the source chain at compile time."""
        return self._fp

    def detach(self) -> None:
        """Drop the source reference; beyond-prefix queries fall back to
        the conservative extension rule."""
        self._source = None

    # ------------------------------------------------------------------
    def _grow_to(self, n: int) -> None:
        """Extend the prefix so it covers δ(n), sampling the source.

        Grows geometrically (at least doubling) so repeated deep queries
        amortise to O(1) source evaluations per index.
        """
        src = self._source
        dmin, dplus = self._dmin, self._dplus
        top = len(dmin) - 1
        if src is None or n <= top:
            return
        target = max(n, 2 * top)
        if _obs.enabled:
            _obs.metrics().counter("compile.extensions").inc()
        # Block sampling lets chain nodes compute the whole prefix in one
        # DP sweep (O(n) per node) instead of per-point recursion (O(n²)
        # for the contribution-vector joins).
        dmin.extend(src.delta_min_block(target)[top + 1:])
        dplus.extend(src.delta_plus_block(target)[top + 1:])

    # ------------------------------------------------------------------
    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        dmin = self._dmin
        if n < len(dmin):
            return dmin[n]
        if self._source is not None:
            self._grow_to(n)
            return self._dmin[n]
        return CurveEventModel.delta_min(self, n)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        dplus = self._dplus
        if n < len(dplus):
            return dplus[n]
        if self._source is not None:
            self._grow_to(n)
            return self._dplus[n]
        return CurveEventModel.delta_plus(self, n)

    # ------------------------------------------------------------------
    # bisect-based characteristic functions over the prefix
    # ------------------------------------------------------------------
    def eta_plus(self, dt: float) -> int:
        if dt <= 0:
            return 0
        dmin = self._dmin
        if dmin[-1] < dt:
            if self._source is None:
                # Detached: defer to the generic pseudo-inverse over the
                # extension rule.
                return EventModel.eta_plus(self, dt)
            while self._dmin[-1] < dt:
                top = len(self._dmin) - 1
                if top > MAX_EVENTS:
                    raise UnboundedStreamError(
                        f"eta_plus({dt!r}) exceeds {MAX_EVENTS} events "
                        f"for {self!r}; the stream has no effective rate "
                        f"limit")
                self._grow_to(2 * top)
            dmin = self._dmin
        # Largest n with δ⁻(n) < dt; entries 0/1 are 0 < dt, so the
        # insertion point is >= 2 and the result >= 1 — identical to the
        # generic exponential+binary search, in one bisect.
        return bisect_left(dmin, dt) - 1

    def eta_min(self, dt: float) -> int:
        if dt < 0:
            return 0
        dplus = self._dplus
        if dplus[-1] <= dt:
            if self._source is None:
                return EventModel.eta_min(self, dt)
            while self._dplus[-1] <= dt:
                top = len(self._dplus) - 1
                if top > MAX_EVENTS:
                    raise UnboundedStreamError(
                        f"eta_min({dt!r}) exceeds {MAX_EVENTS} events "
                        f"for {self!r}")
                self._grow_to(2 * top)
            dplus = self._dplus
        # Smallest n >= 0 with δ⁺(n + 2) > dt.
        return bisect_right(dplus, dt) - 2

    # ------------------------------------------------------------------
    # block evaluation — array slices instead of per-n virtual calls
    # ------------------------------------------------------------------
    def delta_min_block(self, n_max: int) -> list:
        if n_max >= len(self._dmin):
            if self._source is not None:
                self._grow_to(n_max)
            else:
                return self._dmin[:] + [
                    CurveEventModel.delta_min(self, n)
                    for n in range(len(self._dmin), n_max + 1)]
        return self._dmin[:n_max + 1]

    def delta_plus_block(self, n_max: int) -> list:
        if n_max >= len(self._dplus):
            if self._source is not None:
                self._grow_to(n_max)
            else:
                return self._dplus[:] + [
                    CurveEventModel.delta_plus(self, n)
                    for n in range(len(self._dplus), n_max + 1)]
        return self._dplus[:n_max + 1]

    def __repr__(self) -> str:
        state = "attached" if self._source is not None else "detached"
        return (f"<Compiled {self.name} N={len(self._dmin) - 1} "
                f"{state}>")


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
#: Events of verified linear tail required before the detected-periodic
#: extension is accepted, and the probe offsets checked against the
#: source beyond the prefix.
_PERIOD_TAIL = 8
_PERIOD_PROBES = (1, 2, 5, 13)


def _detect_tail_period(dmin, dplus, source) -> "Optional[float]":
    """Detect an exactly linear tail of both δ prefixes.

    Returns the per-event distance ``t`` such that
    ``δ(n + 1) = δ(n) + t`` holds (in exact float arithmetic) over the
    last ``_PERIOD_TAIL`` prefix entries *and* at probe points beyond the
    prefix, or None.  Heuristic — used only for detached curves, where it
    upgrades the conservative additive extension to the exact periodic
    one for eventually-linear chains (standard models and operation
    outputs over them).
    """
    top = len(dmin) - 1
    if top < _PERIOD_TAIL + 2 or isinf(dplus[top]) or isinf(dmin[top]):
        return None
    t = dmin[top] - dmin[top - 1]
    if t <= 0:
        return None
    for i in range(top - _PERIOD_TAIL + 1, top + 1):
        if dmin[i] - dmin[i - 1] != t or dplus[i] - dplus[i - 1] != t:
            return None
    for j in _PERIOD_PROBES:
        if source.delta_min(top + j) != dmin[top] + j * t:
            return None
        if source.delta_plus(top + j) != dplus[top] + j * t:
            return None
    return t


def compile_model(model: EventModel, n_hint: Optional[int] = None,
                  keep_source: bool = True,
                  detect_period: bool = True,
                  name: Optional[str] = None) -> CurveEventModel:
    """Snapshot *model* into an array-backed :class:`CompiledEventModel`.

    Parameters
    ----------
    model:
        Any (flat) event model; typically a derived chain.
    n_hint:
        Prefix length sampled eagerly (defaults to the module-level
        :data:`n_hint`).  Queries beyond it grow the prefix from the
        source, so the hint is a performance knob, not a correctness one.
    keep_source:
        Retain the source model for exact beyond-prefix growth (default).
        With ``keep_source=False`` the curve is detached: beyond the
        prefix it applies the conservative additive extension — or, when
        ``detect_period`` found an exactly linear tail, the exact
        periodic extension.
    detect_period:
        Attempt tail-period detection before detaching (ignored while the
        source is kept, where growth is exact anyway).
    """
    top = n_hint if n_hint is not None else globals()["n_hint"]
    top = max(top, 2)
    dmin = model.delta_min_block(top)
    dplus = model.delta_plus_block(top)
    n_period = t_period = None
    if not keep_source and detect_period:
        t = _detect_tail_period(dmin, dplus, model)
        if t is not None:
            n_period, t_period = 1, t
    if _obs.enabled:
        _obs.metrics().counter("compile.compilations").inc()
        _obs.metrics().histogram("compile.prefix_length").observe(top)
    return CompiledEventModel(
        dmin, dplus,
        source=model if keep_source else None,
        n_period=n_period, t_period=t_period,
        fp=fingerprint(model),
        name=name if name is not None else f"compiled({model.name})")


# ----------------------------------------------------------------------
# structural fingerprints
# ----------------------------------------------------------------------
FingerprintFn = Callable[[EventModel], Optional[tuple]]

_FP_REGISTRY: "Dict[Type[EventModel], FingerprintFn]" = {}


def register_fingerprint(cls: "Type[EventModel]",
                         fn: FingerprintFn) -> None:
    """Register a fingerprint function for an event-model type.

    The function must return a hashable tuple that canonically encodes
    everything the model's δ functions depend on (operation parameters
    plus the fingerprints of input models), or None if the model cannot
    be fingerprinted — None poisons the whole chain, disabling cache
    reuse but not compilation itself.
    """
    _FP_REGISTRY[cls] = fn


def fingerprint(model: EventModel) -> Optional[tuple]:
    """Canonical structural key of a (derived) event model, or None."""
    for klass in type(model).__mro__:
        fn = _FP_REGISTRY.get(klass)
        if fn is not None:
            return fn(model)
    return None


def _all_or_none(tag: str, parts) -> Optional[tuple]:
    out = [tag]
    for part in parts:
        if part is None:
            return None
        out.append(part)
    return tuple(out)


register_fingerprint(NullEventModel, lambda m: ("null",))
register_fingerprint(
    StandardEventModel,
    lambda m: ("sem", m.period, m.jitter, m.d_min, m.sporadic))
register_fingerprint(
    CurveEventModel,
    lambda m: ("curve", tuple(m._dmin), tuple(m._dplus),
               m._n_period, m._t_period))
# A compiled curve stands for its source chain: its arrays grow over
# time, so the stable identity is the fingerprint taken at compile time.
register_fingerprint(CompiledEventModel, lambda m: m._fp)
register_fingerprint(CachedModel, lambda m: fingerprint(m.wrapped))
register_fingerprint(
    TaskOutputModel,
    lambda m: _all_or_none("theta",
                           (m.r_min, m.r_max, fingerprint(m.input_model))))
register_fingerprint(
    _PairwiseOrJoin,
    lambda m: _all_or_none("or2", (fingerprint(m._a), fingerprint(m._b))))
register_fingerprint(
    _SuperpositionOrJoin,
    lambda m: _all_or_none("orsup",
                           (fingerprint(x) for x in m._models)))
register_fingerprint(
    _AndJoin,
    lambda m: _all_or_none("and", (fingerprint(x) for x in m._models)))
register_fingerprint(
    DminShaper,
    lambda m: _all_or_none("shaper",
                           (m.d, m._horizon, fingerprint(m._in))))
register_fingerprint(
    _IntersectionModel,
    lambda m: _all_or_none("isect",
                           (fingerprint(x) for x in m._models)))
register_fingerprint(
    _UnionModel,
    lambda m: _all_or_none("union",
                           (fingerprint(x) for x in m._models)))


def chain_depth(fp: Optional[tuple]) -> int:
    """Nesting depth of a fingerprint: 1 for a leaf model, +1 per
    stacked operation.  None (unfingerprintable) counts as unbounded so
    such chains always clear the compile threshold."""
    if fp is None:
        return MAX_EVENTS
    if not isinstance(fp, tuple):
        return 0
    return 1 + max((chain_depth(x) for x in fp
                    if isinstance(x, tuple)), default=0)


# ----------------------------------------------------------------------
# structural (container) compilation hooks — e.g. hierarchical models
# ----------------------------------------------------------------------
StructuralCompileFn = Callable[[EventModel, Optional[str]], EventModel]

_STRUCTURAL: "Dict[Type[EventModel], StructuralCompileFn]" = {}


def register_structural_compile(cls: "Type[EventModel]",
                                fn: StructuralCompileFn) -> None:
    """Register a container-aware compile hook: *fn(model, name)* should
    compile the model's constituent streams (via :func:`maybe_compile`)
    and return the rebuilt container.  Used by
    :class:`~repro.core.hem.HierarchicalEventModel` so hierarchies keep
    their structure while outer and inner streams become array-backed."""
    _STRUCTURAL[cls] = fn


#: Leaf types that are already O(1)/array-backed — never recompiled.
_NO_COMPILE = (NullEventModel, StandardEventModel, CurveEventModel)


def maybe_compile(model: EventModel,
                  name: Optional[str] = None) -> EventModel:
    """Compile *model* if compilation is enabled and worthwhile.

    Returns the model unchanged when compilation is disabled, when the
    model is already array-backed or closed-form, or when its chain depth
    is below :data:`min_depth`.  Compiled results are shared through the
    process-global fingerprint cache, which is what carries curves across
    global fixed-point iterations.
    """
    if not enabled:
        return model
    structural = None
    for klass in type(model).__mro__:
        structural = _STRUCTURAL.get(klass)
        if structural is not None:
            return structural(model, name)
    if isinstance(model, _NO_COMPILE):
        return model
    fp = fingerprint(model)
    if fp is not None and chain_depth(fp) < min_depth:
        return model
    if fp is not None:
        hit = _cache.get(fp)
        if hit is not None:
            if _obs.enabled:
                _obs.metrics().counter("compile.cache.hits").inc()
            return hit
        if _obs.enabled:
            _obs.metrics().counter("compile.cache.misses").inc()
    compiled = compile_model(model, name=name)
    if fp is not None:
        _cache.put(fp, compiled)
    return compiled


def compile_or_cache(model: EventModel,
                     name: Optional[str] = None) -> EventModel:
    """Compile *model*, or fall back to a memoising
    :class:`CachedModel` wrapper when compilation is disabled or skipped
    — the call-site idiom for derived models on the engine's hot path."""
    out = maybe_compile(model, name=name)
    if out is not model or isinstance(model, (CurveEventModel,
                                              NullEventModel,
                                              StandardEventModel,
                                              CachedModel)):
        return out
    return CachedModel(model, name=name)
