"""Offset-aware combination of synchronised periodic streams.

The plain OR-join (paper eqs. (3)/(4)) must assume the combined streams
can align arbitrarily — for n streams that means bursts of n simultaneous
events.  When streams are *offset-scheduled against a common base period*
(standard practice on automotive CAN: messages released by the same node
share its time base), the alignment is fixed and the combined stream is
exactly periodic with a known intra-cycle pattern.

:func:`offset_join` builds that exact model as a
:class:`~repro.eventmodels.curves.CurveEventModel` with periodic
extension: one cycle of release times, distances extracted from the
unrolled pattern.

This is the classic "offsets kill the burst" effect: compare
``offset_join(1000, [0, 250, 500, 750])`` (δ⁻(2) = 250) against
``or_join([periodic(1000)] * 4)`` (δ⁻(4) = 0).
"""

from __future__ import annotations

from typing import List, Sequence

from .._errors import ModelError
from .curves import CurveEventModel


def offset_join(period: float, offsets: Sequence[float],
                jitter: float = 0.0,
                name: str = "offsets") -> CurveEventModel:
    """Exact event model of synchronised offset-scheduled streams.

    Parameters
    ----------
    period:
        Common base period of all combined streams.
    offsets:
        Release offsets within one cycle; values are reduced modulo the
        period.  One event per offset per cycle.
    jitter:
        Optional per-release jitter (each release may slip by up to
        ``jitter``); must stay below the smallest inter-offset gap for
        the ordering to be preserved (enforced).
    """
    if period <= 0:
        raise ModelError("period must be positive")
    if not offsets:
        raise ModelError("need at least one offset")
    if jitter < 0:
        raise ModelError("jitter must be >= 0")
    points = sorted(o % period for o in offsets)
    m = len(points)

    gaps = [points[i + 1] - points[i] for i in range(m - 1)]
    gaps.append(period - points[-1] + points[0])
    if jitter > 0 and jitter >= min(g for g in gaps if g > 0):
        raise ModelError(
            f"jitter {jitter} reaches the smallest inter-offset gap; "
            f"the release order is no longer guaranteed — use or_join")

    # Unroll enough cycles to cover distances up to n = 2m + 1, then let
    # the periodic extension take over exactly.
    horizon_n = 2 * m + 1
    releases: List[float] = []
    cycle = 0
    while len(releases) < horizon_n + 1:
        releases.extend(p + cycle * period for p in points)
        cycle += 1

    dmin = [0.0, 0.0]
    dplus = [0.0, 0.0]
    for n in range(2, horizon_n + 1):
        spans = [releases[i + n - 1] - releases[i]
                 for i in range(len(releases) - n + 1)]
        base_min = min(spans)
        base_max = max(spans)
        dmin.append(max(0.0, base_min - jitter))
        dplus.append(base_max + jitter)
    return CurveEventModel(dmin, dplus, n_period=m, t_period=period,
                           name=name)
