"""Trace-derived event models.

Builds a :class:`~repro.eventmodels.curves.CurveEventModel` from a recorded
sequence of event timestamps by sliding a window of ``n`` events over the
trace:

    δ⁻(n) = min_i ( t[i + n - 1] - t[i] )
    δ⁺(n) = max_i ( t[i + n - 1] - t[i] )

A trace model is only a valid *bound* if the trace is representative of the
worst case; the simulator uses trace models in the opposite direction — to
check that observed behaviour stays **inside** an analytic bound
(:func:`trace_within_bounds`).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Sequence, Union

from .._errors import ModelError
from ..timebase import EPS, INF
from .base import EventModel
from .curves import CurveEventModel


def model_from_trace(timestamps: Sequence[float], n_max: int = None,
                     name: str = "trace") -> CurveEventModel:
    """Distance curves observed in a timestamp trace.

    Parameters
    ----------
    timestamps:
        Event times; must be non-decreasing with at least two events.
    n_max:
        Longest window (in events) to extract; defaults to the full trace
        length.
    """
    ts = [float(t) for t in timestamps]
    if len(ts) < 2:
        raise ModelError("a trace model needs at least two events")
    for a, b in zip(ts, ts[1:]):
        if b < a:
            raise ModelError("trace timestamps must be non-decreasing")
    top = len(ts) if n_max is None else min(n_max, len(ts))
    if top < 2:
        raise ModelError("n_max must be at least 2")
    dmin = [0.0, 0.0]
    dplus = [0.0, 0.0]
    for n in range(2, top + 1):
        spans = [ts[i + n - 1] - ts[i] for i in range(len(ts) - n + 1)]
        dmin.append(min(spans))
        dplus.append(max(spans))
    return CurveEventModel(dmin, dplus, name=name)


def trace_within_bounds(timestamps: Sequence[float], bound: EventModel,
                        check_plus: bool = False,
                        eps: float = 1e-6,
                        n_max: int = None) -> bool:
    """True if every window of the trace respects the analytic bound.

    Checks ``observed span of n events >= bound.delta_min(n)`` for every
    window, and (optionally) ``<= bound.delta_plus(n)``.  This is the
    conservatism check the simulation-validation benchmarks run: an
    analytic δ⁻ bound is *violated* if the trace packs events tighter
    than the bound permits.

    Traces with fewer than two events are vacuously within bounds.
    ``n_max`` clamps the longest window checked — the full check is
    O(len²), so bulk consumers (the soak oracle) bound it.
    """
    ts = [float(t) for t in timestamps]
    if len(ts) < 2:
        return True
    top = len(ts) if n_max is None else min(max(n_max, 2), len(ts))
    for n in range(2, top + 1):
        lo = bound.delta_min(n)
        hi = bound.delta_plus(n) if check_plus else INF
        for i in range(len(ts) - n + 1):
            span = ts[i + n - 1] - ts[i]
            if span < lo - eps:
                return False
            if check_plus and span > hi + eps:
                return False
    return True


def load_trace_csv(source: Union[str, Path, io.TextIOBase],
                   time_column: str = "time",
                   stream_column: str = "stream"
                   ) -> "Dict[str, List[float]]":
    """Read event traces from CSV (e.g. a bus-logger export).

    Expected columns: *time_column* (float timestamps) and
    *stream_column* (stream/frame/signal name); extra columns are
    ignored.  Returns ``stream name -> sorted timestamps``, ready for
    :func:`model_from_trace` or :func:`trace_within_bounds`.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as fh:
            return load_trace_csv(fh, time_column, stream_column)
    reader = csv.DictReader(source)
    if reader.fieldnames is None \
            or time_column not in reader.fieldnames \
            or stream_column not in reader.fieldnames:
        raise ModelError(
            f"trace CSV needs columns {time_column!r} and "
            f"{stream_column!r}; found {reader.fieldnames}")
    out: "Dict[str, List[float]]" = {}
    for row_no, row in enumerate(reader, start=2):
        try:
            t = float(row[time_column])
        except (TypeError, ValueError):
            raise ModelError(
                f"trace CSV line {row_no}: bad timestamp "
                f"{row[time_column]!r}") from None
        out.setdefault(row[stream_column], []).append(t)
    for events in out.values():
        events.sort()
    return out


def dump_trace_csv(traces: "Dict[str, Sequence[float]]",
                   destination: Union[str, Path, io.TextIOBase],
                   time_column: str = "time",
                   stream_column: str = "stream") -> None:
    """Write stream traces as CSV (inverse of :func:`load_trace_csv`),
    rows sorted by time for easy diffing."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as fh:
            dump_trace_csv(traces, fh, time_column, stream_column)
        return
    writer = csv.writer(destination)
    writer.writerow([time_column, stream_column])
    rows = [(t, name) for name, events in traces.items()
            for t in events]
    for t, name in sorted(rows):
        writer.writerow([repr(float(t)), name])


def violations(timestamps: Sequence[float], bound: EventModel,
               eps: float = 1e-6) -> list:
    """Diagnostic variant of :func:`trace_within_bounds`: returns every
    (n, window_start_index, observed_span, bound_value) quadruple where
    the trace packs ``n`` events tighter than ``bound.delta_min(n)``."""
    ts = [float(t) for t in timestamps]
    out = []
    for n in range(2, len(ts) + 1):
        lo = bound.delta_min(n)
        if lo <= EPS:
            continue
        for i in range(len(ts) - n + 1):
            span = ts[i + n - 1] - ts[i]
            if span < lo - eps:
                out.append((n, i, span, lo))
    return out
