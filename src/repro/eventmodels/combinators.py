"""Bound combinators: intersection and union of event-stream sets.

An event model denotes a *set* of event sequences.  Two natural lattice
operations on these sets:

* :func:`intersect_bounds` — sequences admitted by *both* models
  (δ⁻ = max, δ⁺ = min).  Use to refine a coarse bound with extra
  knowledge, e.g. a measured trace model intersected with a datasheet
  model.  The result can be *empty* (contradictory bounds); this is
  detected and raised.
* :func:`union_bounds` — sequences admitted by *either* model
  (δ⁻ = min, δ⁺ = max).  Use for mode unions: a stream that behaves
  like A in one operating mode and like B in another is safely bounded
  by the union.
"""

from __future__ import annotations

from typing import Sequence

from .._errors import ModelError
from .base import EventModel
from .curves import CachedModel


class _IntersectionModel(EventModel):
    def __init__(self, models: Sequence[EventModel], name: str):
        self._models = list(models)
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        value = max(m.delta_min(n) for m in self._models)
        ceiling = min(m.delta_plus(n) for m in self._models)
        if value > ceiling + 1e-9:
            raise ModelError(
                f"intersection is empty at n={n}: required minimum "
                f"distance {value} exceeds allowed maximum {ceiling}")
        return value

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        value = min(m.delta_plus(n) for m in self._models)
        floor = max(m.delta_min(n) for m in self._models)
        if floor > value + 1e-9:
            raise ModelError(
                f"intersection is empty at n={n}: required minimum "
                f"distance {floor} exceeds allowed maximum {value}")
        return value


class _UnionModel(EventModel):
    def __init__(self, models: Sequence[EventModel], name: str):
        self._models = list(models)
        self.name = name

    def delta_min(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return min(m.delta_min(n) for m in self._models)

    def delta_plus(self, n: int) -> float:
        self._check_n(n)
        if n < 2:
            return 0.0
        return max(m.delta_plus(n) for m in self._models)


def intersect_bounds(models: Sequence[EventModel],
                     name: str = "meet") -> EventModel:
    """Tightest bound admitting only sequences every input admits.

    Raises :class:`ModelError` lazily (at evaluation) if the inputs
    contradict each other at some n; call :func:`check_consistent` to
    probe eagerly.
    """
    if not models:
        raise ModelError("intersect_bounds needs at least one model")
    if len(models) == 1:
        return models[0]
    return CachedModel(_IntersectionModel(models, name), name=name)


def union_bounds(models: Sequence[EventModel],
                 name: str = "join") -> EventModel:
    """Loosest bound admitting every sequence any input admits."""
    if not models:
        raise ModelError("union_bounds needs at least one model")
    if len(models) == 1:
        return models[0]
    return CachedModel(_UnionModel(models, name), name=name)


def check_consistent(models: Sequence[EventModel],
                     n_max: int = 64) -> bool:
    """True if the models' intersection is non-empty up to ``n_max``."""
    meet = intersect_bounds(models)
    try:
        for n in range(2, n_max + 1):
            meet.delta_min(n)
            meet.delta_plus(n)
    except ModelError:
        return False
    return True
