"""Event-model algebra: characteristic functions, standard models, curves,
joins, shapers, and conversions.

This package implements the flat event-stream layer of compositional
performance analysis (paper section 3) on which the hierarchical event
models of :mod:`repro.core` are built.
"""

from .base import EventModel, NullEventModel, models_equal
from .standard import (
    StandardEventModel,
    periodic,
    periodic_with_burst,
    periodic_with_jitter,
    sporadic,
)
from .combinators import check_consistent, intersect_bounds, union_bounds
from .compile import (
    CompilationCache,
    CompiledEventModel,
    compile_model,
    fingerprint,
    maybe_compile,
    register_fingerprint,
)
from .curves import CachedModel, CurveEventModel, FunctionEventModel, freeze
from .operations import (
    DminShaper,
    TaskOutputModel,
    and_join,
    or_join,
    or_join_superposition,
)
from .offsets import offset_join
from .trace import (
    dump_trace_csv,
    load_trace_csv,
    model_from_trace,
    trace_within_bounds,
    violations,
)
from .convert import fit_standard, verify_dominates

__all__ = [
    "EventModel",
    "NullEventModel",
    "models_equal",
    "StandardEventModel",
    "periodic",
    "periodic_with_jitter",
    "periodic_with_burst",
    "sporadic",
    "CurveEventModel",
    "FunctionEventModel",
    "CachedModel",
    "CompiledEventModel",
    "CompilationCache",
    "compile_model",
    "maybe_compile",
    "fingerprint",
    "register_fingerprint",
    "freeze",
    "TaskOutputModel",
    "or_join",
    "or_join_superposition",
    "and_join",
    "offset_join",
    "intersect_bounds",
    "union_bounds",
    "check_consistent",
    "DminShaper",
    "model_from_trace",
    "trace_within_bounds",
    "violations",
    "load_trace_csv",
    "dump_trace_csv",
    "fit_standard",
    "verify_dominates",
]
