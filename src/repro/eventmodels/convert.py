"""Conversions between event-model representations.

The paper (and SymTA/S practice) moves between arbitrary distance curves
and the three-parameter standard event models.  This module provides:

* :func:`fit_standard` — smallest conservative (P, J, d_min) model that
  bounds an arbitrary curve (η⁺ of the fit dominates the original, η⁻ is
  dominated): the classic SEM approximation step.
* :func:`verify_dominates` — check that one model conservatively bounds
  another on a test range (used after every lossy conversion).
"""

from __future__ import annotations

import math

from .._errors import ModelError
from ..timebase import EPS, INF
from .base import EventModel
from .standard import StandardEventModel


def fit_standard(model: EventModel, horizon: int = 200,
                 name: str = "fit") -> StandardEventModel:
    """Conservative standard-event-model approximation of any stream.

    Construction (horizon-limited):

    Conservatism requirement::

        fitted δ⁻(n) <= true δ⁻(n)   and   fitted δ⁺(n) >= true δ⁺(n)

    * ``P``      — mean of the δ⁻ and δ⁺ chord slopes over the horizon
      tail.  Joins of periodic streams show beat-pattern wobble in those
      chords, so the two estimates may differ slightly; genuinely
      diverging slopes (> 25% relative, i.e. a real long-run rate drift
      between the two bounds) cannot be captured by any single-period
      SEM and raise :class:`ModelError` (unless the δ⁺ side is already
      unbounded — sporadic fit).
    * ``J``      — smallest jitter such that both
      ``(n-1)P - J <= δ⁻(n)`` and ``(n-1)P + J >= δ⁺(n)`` hold over the
      whole horizon; this makes the fit conservative for every
      ``n <= horizon`` *by construction*, whatever P was estimated.
    * ``d_min``  — ``δ⁻(2)`` of the original (largest safe value).

    Beyond the horizon the fit extrapolates with slope P; validate with
    :func:`verify_dominates` at the n-range you care about if the stream
    is not rate-consistent.
    """
    if horizon < 8:
        raise ModelError("fit horizon must be at least 8 events")
    d2 = model.delta_min(2)
    sporadic = math.isinf(model.delta_plus(2))

    # Slope estimate: use the chord of δ⁻ over the horizon tail.  δ⁻ of a
    # well-formed stream grows asymptotically with slope P.
    n_hi = horizon
    n_lo = max(2, horizon // 2)
    dm_hi = model.delta_min(n_hi)
    dm_lo = model.delta_min(n_lo)
    if math.isinf(dm_hi):
        # Fewer than horizon events ever occur; fall back to the last
        # finite point to derive a pseudo-period.
        n = 2
        while n <= horizon and not math.isinf(model.delta_min(n)):
            n += 1
        n_hi = n - 1
        if n_hi < 3:
            raise ModelError("stream produces too few events to fit a SEM")
        dm_hi = model.delta_min(n_hi)
        n_lo = max(2, n_hi // 2)
        dm_lo = model.delta_min(n_lo)
    period = (dm_hi - dm_lo) / (n_hi - n_lo)
    if period <= 0:
        raise ModelError(
            "stream has zero long-run distance growth; no SEM fits")

    if not sporadic:
        dp_hi = model.delta_plus(n_hi)
        dp_lo = model.delta_plus(n_lo)
        plus_slope = (dp_hi - dp_lo) / (n_hi - n_lo)
        if plus_slope > period * 1.25 + EPS:
            raise ModelError(
                f"δ⁺ slope ({plus_slope:.6g}) diverges from δ⁻ slope "
                f"({period:.6g}); no single-period SEM bounds both sides — "
                f"fit a sporadic model or keep the curve")
        period = (period + plus_slope) / 2.0

    jitter = 0.0
    for n in range(2, n_hi + 1):
        need_minus = (n - 1) * period - model.delta_min(n)
        if need_minus > jitter:
            jitter = need_minus
        if not sporadic:
            need_plus = model.delta_plus(n) - (n - 1) * period
            if need_plus > jitter:
                jitter = need_plus
    jitter = max(0.0, jitter)
    d_min = max(0.0, min(d2, period))
    return StandardEventModel(period, jitter, d_min, sporadic=sporadic,
                              name=name)


def verify_dominates(bound: EventModel, model: EventModel,
                     n_max: int = 64, eps: float = 1e-6) -> bool:
    """True if *bound* conservatively covers *model*:

    ``bound.delta_min(n) <= model.delta_min(n)`` and
    ``bound.delta_plus(n) >= model.delta_plus(n)`` for all ``2 <= n <=
    n_max``.  A bound that covers admits at least every event sequence
    the covered model admits.
    """
    for n in range(2, n_max + 1):
        if bound.delta_min(n) > model.delta_min(n) + eps:
            return False
        bp, mp = bound.delta_plus(n), model.delta_plus(n)
        if math.isinf(mp) and not math.isinf(bp):
            return False
        if not math.isinf(mp) and bp < mp - eps:
            return False
    return True
