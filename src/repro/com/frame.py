"""COM-layer frames / I-PDUs (paper section 4).

A frame collects the registers of its assigned signals and is transmitted
according to its **frame type**:

* ``PERIODIC`` — sent strictly periodically, "not influenced by the
  arrival of the output events of the tasks".
* ``DIRECT``   — sent for each arrival of a triggering signal.
* ``MIXED``    — both: periodic timer *and* triggering signals.

The *effective* transfer property of a signal therefore depends on the
frame type: inside a PERIODIC frame even a nominally triggering signal
cannot cause transmissions, so its embedded stream must be modelled as
pending.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .._errors import ModelError
from ..core.constructors import TransferProperty
from .signal import Signal


class FrameType(enum.Enum):
    PERIODIC = "periodic"
    DIRECT = "direct"
    MIXED = "mixed"


@dataclass
class Frame:
    """A COM frame definition.

    Attributes
    ----------
    name:
        Unique frame name (also the bus task name when installed).
    frame_type:
        Transmission rule (see module docstring).
    signals:
        The signals packed into this frame, in payload order.
    period:
        Timer period; required for PERIODIC and MIXED frames.
    can_id:
        Bus arbitration identifier (doubles as priority; lower wins).
    payload_bytes:
        Frame payload size; defaults to the minimum bytes covering all
        signal widths.
    extended_id:
        29-bit identifier format if True.
    """

    name: str
    frame_type: FrameType
    signals: List[Signal]
    period: Optional[float] = None
    can_id: int = 0
    payload_bytes: Optional[int] = None
    extended_id: bool = False

    def __post_init__(self):
        if not self.signals:
            raise ModelError(f"frame {self.name}: needs at least one signal")
        names = [s.name for s in self.signals]
        if len(set(names)) != len(names):
            raise ModelError(f"frame {self.name}: duplicate signal names")
        needs_timer = self.frame_type in (FrameType.PERIODIC,
                                          FrameType.MIXED)
        if needs_timer and (self.period is None or self.period <= 0):
            raise ModelError(
                f"frame {self.name}: {self.frame_type.value} frames need "
                f"a positive period")
        if self.frame_type is FrameType.DIRECT:
            if not any(s.is_triggering for s in self.signals):
                raise ModelError(
                    f"frame {self.name}: a direct frame needs at least "
                    f"one triggering signal (it would never be sent)")
        total_bits = sum(s.width_bits for s in self.signals)
        min_bytes = (total_bits + 7) // 8
        if self.payload_bytes is None:
            self.payload_bytes = min_bytes
        if self.payload_bytes < min_bytes:
            raise ModelError(
                f"frame {self.name}: payload {self.payload_bytes} B too "
                f"small for {total_bits} signal bits")
        if self.payload_bytes > 8:
            raise ModelError(
                f"frame {self.name}: payload {self.payload_bytes} B "
                f"exceeds the 8-byte CAN maximum")

    # ------------------------------------------------------------------
    @property
    def has_timer(self) -> bool:
        return self.frame_type in (FrameType.PERIODIC, FrameType.MIXED)

    def effective_transfer(self, signal: Signal) -> TransferProperty:
        """The transfer property that actually governs the signal's
        embedded stream, given the frame type.

        PERIODIC frames decouple transmission from signal arrival
        entirely — every signal is effectively pending.
        """
        if self.frame_type is FrameType.PERIODIC:
            return TransferProperty.PENDING
        return signal.transfer

    def triggering_signals(self) -> List[Signal]:
        """Signals whose arrivals cause transmissions of this frame."""
        return [s for s in self.signals
                if self.effective_transfer(s) is
                TransferProperty.TRIGGERING]

    def pending_signals(self) -> List[Signal]:
        """Signals that merely ride along."""
        return [s for s in self.signals
                if self.effective_transfer(s) is TransferProperty.PENDING]

    def signal(self, name: str) -> Signal:
        for s in self.signals:
            if s.name == name:
                return s
        raise ModelError(f"frame {self.name}: no signal {name!r}")
