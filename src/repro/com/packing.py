"""Frame-packing optimisation: assigning signals to frames.

How signals are grouped into frames is a real design decision with
directly analysable consequences: packing a slow pending signal next to
a fast triggering one wastes bus bandwidth (the slow signal rides a fast
frame), while packing rate-similar signals keeps frames small and the
unpacked inner streams tight.

Two classic strategies are provided:

* :func:`pack_by_period` — sort signals by period and fill frames with
  rate-neighbours (the standard heuristic in CAN design tools);
* :func:`pack_first_fit` — first-fit by declaration order (the naive
  baseline the ablation benchmark compares against).

Both return a ready :class:`~repro.com.layer.ComLayer`;
:func:`estimate_bus_load` scores a packing without running the full
analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .._errors import ModelError
from ..eventmodels.base import EventModel
from .frame import Frame, FrameType
from .layer import ComLayer
from .signal import Signal
from .timing import frame_activation_model

#: CAN payload limit in bits.
_MAX_PAYLOAD_BITS = 64


def _fill_frames(ordered: "List[Signal]",
                 max_payload_bits: int) -> "List[List[Signal]]":
    groups: "List[List[Signal]]" = []
    current: "List[Signal]" = []
    used = 0
    for sig in ordered:
        if used + sig.width_bits > max_payload_bits and current:
            groups.append(current)
            current = []
            used = 0
        current.append(sig)
        used += sig.width_bits
    if current:
        groups.append(current)
    return groups


def _build_layer(groups: "List[List[Signal]]",
                 models: "Dict[str, EventModel]",
                 timer_period, name: str) -> ComLayer:
    layer = ComLayer(name)
    for idx, group in enumerate(groups):
        has_trigger = any(s.is_triggering for s in group)
        has_pending = any(s.is_pending for s in group)
        if timer_period is not None:
            period = timer_period
        elif has_pending:
            # Freshness rule: every pending value must get a
            # transmission opportunity within its source period — the
            # timer runs at the fastest pending member's rate.  This is
            # where packing *composition* decides the bus load: one fast
            # pending signal drags its whole frame to its rate.
            period = min(_period_of(models[s.name])
                         for s in group if s.is_pending)
        else:
            period = None
        if has_trigger:
            frame_type = (FrameType.MIXED if period is not None
                          else FrameType.DIRECT)
        else:
            frame_type = FrameType.PERIODIC
        layer.add_frame(Frame(
            name=f"F{idx + 1}",
            frame_type=frame_type,
            signals=list(group),
            period=period,
            can_id=idx + 1,
        ))
    return layer


def pack_by_period(signals: Sequence[Signal],
                   models: "Dict[str, EventModel]",
                   max_payload_bits: int = _MAX_PAYLOAD_BITS,
                   timer_period=None,
                   name: str = "packed") -> ComLayer:
    """Group rate-similar signals: sort by source period, fill frames.

    Keeps fast signals together (their frame is fast anyway) and spares
    slow signals from riding fast frames.
    """
    _check_inputs(signals, models)
    ordered = sorted(signals,
                     key=lambda s: _period_of(models[s.name]))
    return _build_layer(_fill_frames(ordered, max_payload_bits), models,
                        timer_period, name)


def pack_first_fit(signals: Sequence[Signal],
                   models: "Dict[str, EventModel]",
                   max_payload_bits: int = _MAX_PAYLOAD_BITS,
                   timer_period=None,
                   name: str = "firstfit") -> ComLayer:
    """Naive baseline: fill frames in declaration order."""
    _check_inputs(signals, models)
    return _build_layer(_fill_frames(list(signals), max_payload_bits),
                        models, timer_period, name)


def estimate_bus_load(layer: ComLayer,
                      models: "Dict[str, EventModel]",
                      bit_time: float = 0.5) -> float:
    """Long-run bus utilisation of a packing (frame rate × wire time)."""
    from ..can.timing import CanBusTiming

    timing = CanBusTiming(bit_time)
    load = 0.0
    for frame in layer.frames.values():
        activation = frame_activation_model(frame, models)
        wire = timing.transmission_time_max(frame.payload_bytes)
        load += activation.load() * wire
    return load


def _period_of(model: EventModel) -> float:
    period = getattr(model, "period", None)
    if period is not None:
        return period
    rate = model.load()
    if rate <= 0:
        return float("inf")
    return 1.0 / rate


def _check_inputs(signals: Sequence[Signal],
                  models: "Dict[str, EventModel]") -> None:
    if not signals:
        raise ModelError("nothing to pack")
    names = [s.name for s in signals]
    if len(set(names)) != len(names):
        raise ModelError("duplicate signal names")
    missing = [n for n in names if n not in models]
    if missing:
        raise ModelError(f"missing event models for {missing}")
    for s in signals:
        if s.width_bits > _MAX_PAYLOAD_BITS:
            raise ModelError(
                f"signal {s.name}: {s.width_bits} bits exceed one frame")
