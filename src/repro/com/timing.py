"""COM-layer stream timing: the paper's equations (5)–(8) standalone.

Section 4 derives, per signal stream ES_i packed into a frame, the
distance functions δ'_i of the *frames that transport signals of ES_i*:

Triggering signals (eqs. (5)/(6)) — each arrival immediately causes a
frame, so the transporting-frame stream inherits the signal stream::

    δ'⁻_i(n) = δ⁻_i(n)           δ'⁺_i(n) = δ⁺_i(n)

Pending signals (eqs. (7)/(8)) — Fig. 3's construction: the first of n
signal values may just miss a frame and wait up to the maximum frame
distance δ⁺_f(2); each frame carries at most one fresh value per stream::

    δ'⁻_i(n) = max( δ⁻_i(n) - δ⁺_f(2),  δ⁻_f(n) )
    δ'⁺_i(n) = ∞

These helpers exist for direct use and for tests pinning the equations;
:func:`repro.core.constructors.hsc_pack` applies the same math when it
builds the hierarchical event model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .._errors import ModelError
from ..core.constructors import PendingInnerModel, TransferProperty
from ..eventmodels.base import EventModel
from ..eventmodels.operations import or_join
from ..eventmodels.standard import periodic
from .frame import Frame, FrameType


def triggering_transport_model(signal_model: EventModel) -> EventModel:
    """Eqs. (5)/(6): the transporting frames of a triggering signal have
    exactly the signal's timing."""
    return signal_model


def pending_transport_model(signal_model: EventModel,
                            frame_model: EventModel,
                            name: str = "pending") -> EventModel:
    """Eqs. (7)/(8): transporting-frame bounds of a pending signal."""
    return PendingInnerModel(signal_model, frame_model, name=name)


def frame_activation_model(frame: Frame,
                           signal_models: "Dict[str, EventModel]",
                           name: Optional[str] = None) -> EventModel:
    """Frame transmission timing: OR-activation over all effectively
    triggering signals plus the timer (paper section 4: "a timer is
    treated as an additional triggering signal").
    """
    contributors = []
    for sig in frame.triggering_signals():
        try:
            contributors.append(signal_models[sig.name])
        except KeyError:
            raise ModelError(
                f"frame {frame.name}: no event model for signal "
                f"{sig.name!r}") from None
    if frame.has_timer:
        contributors.append(periodic(frame.period,
                                     name=f"{frame.name}.timer"))
    if not contributors:
        raise ModelError(
            f"frame {frame.name}: nothing ever triggers a transmission")
    return or_join(contributors,
                   name=name if name is not None else f"{frame.name}.act")
