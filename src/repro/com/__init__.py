"""AUTOSAR-style COM layer: signals, frames, packing timing."""

from .frame import Frame, FrameType
from .layer import ComLayer
from .packing import estimate_bus_load, pack_by_period, pack_first_fit
from .signal import Signal
from .timing import (
    frame_activation_model,
    pending_transport_model,
    triggering_transport_model,
)

__all__ = [
    "Signal",
    "Frame",
    "FrameType",
    "ComLayer",
    "frame_activation_model",
    "triggering_transport_model",
    "pending_transport_model",
    "pack_by_period",
    "pack_first_fit",
    "estimate_bus_load",
]
