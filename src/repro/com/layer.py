"""The COM layer: frame table plus system-graph installation.

:class:`ComLayer` owns a set of frames and knows how to

* build each frame's hierarchical event model directly from signal
  models (:meth:`build_frame_hem` — the standalone, engine-free path used
  in quick studies and tests), and
* install the full sender-side COM stack into a
  :class:`repro.system.System`: per frame a timer source (if any), a PACK
  junction, a bus task on the CAN resource, and an UNPACK junction whose
  ports receivers connect to (:meth:`install`).

The receiving side of the paper's COM layer writes incoming frame data
into registers and activates the consumer either per interrupt (connect
the consumer task to ``{frame}_rx.{signal}``) or by polling (shape the
unpacked stream with :func:`repro.core.unpack_polled`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .._errors import ModelError
from ..can.identifiers import validate_identifiers
from ..can.timing import CanBusTiming
from ..core.constructors import hsc_pack
from ..core.hem import HierarchicalEventModel
from ..eventmodels.base import EventModel
from ..eventmodels.standard import periodic
from ..system.model import JunctionKind, System
from .frame import Frame


class ComLayer:
    """Sender-side COM layer: a table of frames with packed signals."""

    def __init__(self, name: str = "com"):
        self.name = name
        self.frames: "Dict[str, Frame]" = {}

    def add_frame(self, frame: Frame) -> Frame:
        if frame.name in self.frames:
            raise ModelError(f"duplicate frame name {frame.name!r}")
        for existing in self.frames.values():
            shared = ({s.name for s in existing.signals}
                      & {s.name for s in frame.signals})
            if shared:
                raise ModelError(
                    f"signals {sorted(shared)} already packed into frame "
                    f"{existing.name!r}")
        self.frames[frame.name] = frame
        return frame

    def frame_of_signal(self, signal_name: str) -> Frame:
        for frame in self.frames.values():
            if any(s.name == signal_name for s in frame.signals):
                return frame
        raise ModelError(f"no frame carries signal {signal_name!r}")

    # ------------------------------------------------------------------
    # standalone HEM construction (no system engine involved)
    # ------------------------------------------------------------------
    def build_frame_hem(self, frame_name: str,
                        signal_models: "Dict[str, EventModel]"
                        ) -> HierarchicalEventModel:
        """Ω_pa for one frame: hierarchical event model of its
        transmission requests, given the signal source models."""
        frame = self.frames[frame_name]
        signals = {}
        for sig in frame.signals:
            try:
                model = signal_models[sig.name]
            except KeyError:
                raise ModelError(
                    f"frame {frame_name}: missing event model for signal "
                    f"{sig.name!r}") from None
            signals[sig.name] = (model, frame.effective_transfer(sig))
        timer = (periodic(frame.period, name=f"{frame_name}.timer")
                 if frame.has_timer else None)
        return hsc_pack(signals, timer=timer, name=frame_name)

    # ------------------------------------------------------------------
    # system-graph installation
    # ------------------------------------------------------------------
    def install(self, system: System, bus_resource: str,
                bus_timing: CanBusTiming,
                signal_sources: "Dict[str, str]") -> "Dict[str, str]":
        """Wire the COM stack into *system*.

        Parameters
        ----------
        system:
            Target system; the bus resource (SPNP-scheduled) must already
            exist.
        bus_resource:
            Name of the CAN bus resource.
        bus_timing:
            Bit timing used to derive frame transmission times.
        signal_sources:
            Mapping signal name → producing port in the system graph.

        Returns
        -------
        Mapping ``signal name -> receiver port`` (``{frame}_rx.{signal}``)
        to connect consumer tasks to.

        Per frame this creates: ``{frame}_timer`` source (periodic/mixed),
        ``{frame}_pack`` PACK junction, ``{frame}`` bus task, and
        ``{frame}_rx`` UNPACK junction.
        """
        if bus_resource not in system.resources:
            raise ModelError(f"unknown bus resource {bus_resource!r}")
        validate_identifiers(
            {f.name: f.can_id for f in self.frames.values()},
            extended=any(f.extended_id for f in self.frames.values()))

        receiver_ports: "Dict[str, str]" = {}
        for frame in self.frames.values():
            timer_name = None
            if frame.has_timer:
                timer_name = f"{frame.name}_timer"
                system.add_source(timer_name,
                                  periodic(frame.period, name=timer_name))

            port_by_signal = {}
            properties = {}
            for sig in frame.signals:
                try:
                    port = signal_sources[sig.name]
                except KeyError:
                    raise ModelError(
                        f"no source port for signal {sig.name!r}") from None
                port_by_signal[sig.name] = port
                properties[port] = frame.effective_transfer(sig)

            pack_name = f"{frame.name}_pack"
            system.add_junction(pack_name, JunctionKind.PACK,
                                list(properties), properties=properties,
                                timer=timer_name)

            c_min = bus_timing.transmission_time_min(frame.payload_bytes,
                                                     frame.extended_id)
            c_max = bus_timing.transmission_time_max(frame.payload_bytes,
                                                     frame.extended_id)
            system.add_task(frame.name, bus_resource, (c_min, c_max),
                            [pack_name], priority=frame.can_id)

            rx_name = f"{frame.name}_rx"
            system.add_junction(rx_name, JunctionKind.UNPACK, [frame.name])
            for sig in frame.signals:
                receiver_ports[sig.name] = \
                    f"{rx_name}.{port_by_signal[sig.name]}"
        return receiver_ports

    def total_payload_bytes(self) -> int:
        return sum(f.payload_bytes for f in self.frames.values())

    def __repr__(self) -> str:
        return f"<ComLayer {self.name}: frames={list(self.frames)}>"
