"""COM-layer signals (paper section 4).

A *signal* is an application-level value written by a sender task into a
register provided by the communication layer (overwriting the previous
value).  Each signal has a fixed position in a frame and a **transfer
property**:

* ``TRIGGERING`` — every new value requests an immediate frame
  transmission (for direct/mixed frames).
* ``PENDING`` — the value just sits in the register and rides along with
  the next transmission caused by something else (another signal's
  trigger or the frame timer).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._errors import ModelError
from ..core.constructors import TransferProperty


@dataclass(frozen=True)
class Signal:
    """A COM signal definition.

    Attributes
    ----------
    name:
        Unique signal name; also the stream label inside the frame's
        hierarchical event model.
    width_bits:
        Size of the signal value in bits (for payload packing checks).
    transfer:
        Requested transfer property.  Note a *periodic* frame ignores
        this: transmissions are purely timer-driven, so every signal
        effectively behaves as pending (see
        :meth:`repro.com.frame.Frame.effective_transfer`).
    source:
        Name of the producing stream/port in the system graph (set when
        wiring into a :class:`repro.system.System`; optional for
        standalone event-model work).
    """

    name: str
    width_bits: int
    transfer: TransferProperty = TransferProperty.TRIGGERING
    source: str = ""

    def __post_init__(self):
        if self.width_bits <= 0:
            raise ModelError(
                f"signal {self.name}: width must be positive bits")
        if self.width_bits > 64:
            raise ModelError(
                f"signal {self.name}: width {self.width_bits} exceeds a "
                f"CAN frame's 64 payload bits")

    @property
    def is_triggering(self) -> bool:
        return self.transfer is TransferProperty.TRIGGERING

    @property
    def is_pending(self) -> bool:
        return self.transfer is TransferProperty.PENDING
