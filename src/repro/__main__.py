"""``python -m repro`` — print the full reproduction report."""

import sys

from .report import main

sys.exit(main())
