"""``python -m repro`` — reproduction report, tracing, and batch CLI.

Modes:

* ``python -m repro [sim_horizon]`` — print the full reproduction
  report (Tables 1-3, Figure 4, simulation validation).
* ``python -m repro trace <example.py|rox08> [--out PATH]`` — run a
  workload with observability enabled and dump the span trace as JSONL
  (see :mod:`repro.obs.cli`).
* ``python -m repro batch <space> [--workers N] [--resume]`` — sweep a
  predefined design space through the parallel batch engine with a
  persistent result cache (see :mod:`repro.batch.cli`).
* ``python -m repro explain <example> [--task NAME] [--dot PATH]
  [--chrome PATH]`` — WCRT blame attribution and event-model lineage
  for a built-in example (see :mod:`repro.explain.cli`).
* ``python -m repro resilience <example> [--faults N --seed S]
  [--metamorphic] [--json PATH]`` — degraded analysis with health
  reporting, seeded fault injection, and metamorphic conservativeness
  checks (see :mod:`repro.resilience.cli`).
* ``python -m repro top <space> [--workers N | --follow] [--once]`` —
  live sweep monitor fed by the streaming telemetry bus; ``--follow``
  tails the result store of a sweep owned by another process (see
  :mod:`repro.obs.top`).
* ``python -m repro profile <example.py|rox08> [--hz N --out PATH]``
  — run a workload under the wall-clock sampling profiler and emit
  collapsed-stack flamegraph output plus a hot-path table (see
  :mod:`repro.obs.profile`).
* ``python -m repro serve [--port N --workers K]`` — run the
  analysis-as-a-service daemon: an async HTTP+JSON API over the batch
  engine with shared result/curve caches (see :mod:`repro.serve`).
* ``python -m repro submit <example-or-space>`` — send an analyze /
  explain / streaming-sweep request to a running daemon (see
  :mod:`repro.serve.cli`).
* ``python -m repro soak <profile> [--minutes M --samples N --seed S]
  [--resume] [--fail-on-violation]`` — randomized burn-in campaign
  over the contract/invariant matrix with auto-shrinking failure
  triage; ``soak replay <bundle>`` re-evaluates a triage bundle (see
  :mod:`repro.soak.cli`).
"""

import sys

from .batch.cli import batch_main
from .explain.cli import explain_main
from .obs.cli import trace_main
from .obs.profile import profile_main
from .obs.top import top_main
from .report import main
from .resilience.cli import resilience_main
from .serve.cli import serve_main, submit_main
from .soak.cli import soak_main

if len(sys.argv) > 1 and sys.argv[1] == "soak":
    sys.exit(soak_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "trace":
    sys.exit(trace_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "profile":
    sys.exit(profile_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "serve":
    sys.exit(serve_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "submit":
    sys.exit(submit_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "top":
    sys.exit(top_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "batch":
    sys.exit(batch_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "explain":
    sys.exit(explain_main(sys.argv[2:]))
if len(sys.argv) > 1 and sys.argv[1] == "resilience":
    sys.exit(resilience_main(sys.argv[2:]))
sys.exit(main())
