"""``python -m repro`` — reproduction report and tracing CLI.

Modes:

* ``python -m repro [sim_horizon]`` — print the full reproduction
  report (Tables 1-3, Figure 4, simulation validation).
* ``python -m repro trace <example.py|rox08> [--out PATH]`` — run a
  workload with observability enabled and dump the span trace as JSONL
  (see :mod:`repro.obs.cli`).
"""

import sys

from .obs.cli import trace_main
from .report import main

if len(sys.argv) > 1 and sys.argv[1] == "trace":
    sys.exit(trace_main(sys.argv[2:]))
sys.exit(main())
