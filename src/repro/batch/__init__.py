"""repro.batch — parallel batch analysis with persistent memoisation.

The single-question engine (:func:`repro.system.analyze_system`)
answers one query about one configuration; every real investigation —
table sweeps, sensitivity searches, headroom exploration, sim-vs-
analysis validation — asks hundreds of nearby questions.  This package
turns those questions into content-addressed :class:`Job` objects and
runs them through an executor with a persistent result store:

* :mod:`repro.batch.jobs` — ``Job``/``JobResult``, the job-kind
  registry, and built-in kinds (``analyze``, ``wcet_scaling``,
  ``task_slack``, ``simulate``).
* :mod:`repro.batch.store` — on-disk JSONL result log + hash index:
  cross-run memoisation and checkpoint/resume.
* :mod:`repro.batch.executor` — serial and process-pool backends with
  per-job timeout and error capture, plus the memoising
  :class:`BatchRunner`.
* :mod:`repro.batch.design_space` — the :class:`DesignSpace` driver:
  grid / random sampling over WCETs, periods, and structural knobs,
  aggregated into :mod:`repro.viz` tables.
* :mod:`repro.batch.spaces` — predefined spaces for the CLI and
  benchmarks.

Minimal use::

    from repro.batch import BatchRunner, ResultStore, make_backend
    from repro.batch.spaces import quickstart_space

    space = quickstart_space()
    runner = BatchRunner(store=ResultStore(".repro-batch/quickstart"),
                         backend=make_backend(workers=4))
    sweep = space.run(runner)
    print(sweep.table())        # axes + convergence + worst WCRT
    print(sweep.report.summary())

Re-running the same sweep serves every point from the store; killing it
half-way and re-running finishes only the missing points.  From the
shell: ``python -m repro batch quickstart --workers 4 --resume``.
"""

from .design_space import (
    Axis,
    DesignSpace,
    DesignSpaceResult,
    period_axis,
    priority_axis,
    wcet_axis,
)
from .executor import (
    BatchReport,
    BatchRunner,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from .jobs import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    Job,
    JobResult,
    job_kinds,
    register_job_kind,
    run_job,
    taskspec_from_dict,
    taskspec_to_dict,
)
from .store import ResultStore

__all__ = [
    "Job",
    "JobResult",
    "run_job",
    "register_job_kind",
    "job_kinds",
    "taskspec_to_dict",
    "taskspec_from_dict",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "ResultStore",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "BatchRunner",
    "BatchReport",
    "Axis",
    "DesignSpace",
    "DesignSpaceResult",
    "wcet_axis",
    "period_axis",
    "priority_axis",
]
