"""Job abstraction: content-addressed units of analysis work.

A :class:`Job` is a *pure, serialisable* description of one analysis
question — "analyse this system", "how much WCET headroom does this
resource have", "does the simulator stay below the analytic bounds" —
keyed by a deterministic content hash of its canonical JSON payload.
Because the payload carries the system as a :func:`repro.system.
system_to_dict` dict (never a live object), jobs cross process
boundaries without pickling schedulers or event models: workers rebuild
the system with :func:`repro.system.system_from_dict` and run the
ordinary engine.

Job kinds are looked up in a registry so downstream code (and tests)
can add their own::

    @register_job_kind("my_kind")
    def _run_my_kind(payload: dict) -> dict:
        ...

The executor layer (:mod:`repro.batch.executor`) calls :func:`run_job`,
which never raises: failures come back as a :class:`JobResult` with
``status="failed"`` and the full traceback, so one diverging fixed
point cannot sink a thousand-point sweep.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .. import obs as _obs
from .._errors import ModelError
from ..obs import context as _obs_context
from ..analysis.interface import TaskSpec
from ..system.serialize import (
    content_hash,
    model_from_dict,
    model_to_dict,
    scheduler_from_dict,
    system_from_dict,
)

#: Result statuses.  ``ok`` results are cache-eligible; ``failed`` and
#: ``timeout`` results are recorded (so a resumed sweep knows the point
#: was attempted) but retried on the next run.  ``poisoned`` results are
#: failures quarantined by the retry machinery (deterministic errors, or
#: transients that survived the attempt budget); they are served from
#: cache like ``ok`` results so later sweeps skip the known mine.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_POISONED = "poisoned"


@dataclass(frozen=True)
class Job:
    """One content-addressed unit of analysis work.

    Attributes
    ----------
    kind:
        Registry name of the function that executes the job.
    payload:
        JSON-compatible arguments for the kind function.  Systems travel
        as ``system_to_dict`` dicts.
    label:
        Human-readable tag for progress output and tables; *not* part of
        the identity.
    timeout:
        Per-job wall-time budget in seconds (enforced by the executor
        backends); also excluded from the identity.
    options:
        Execution hints that must **not** change what the job computes —
        e.g. ``{"incremental": "<group>"}`` to route the analysis
        through a shared :class:`~repro.analysis.memo.AnalysisMemo`.
        Like ``label`` and ``timeout`` they are excluded from the
        identity: an incremental job and a cold job of the same payload
        share one cache entry, which is exactly the bit-identity
        contract the memo layer guarantees.  Job kinds read them via
        :func:`current_job_options`.
    key:
        Derived content hash over ``(kind, payload)`` — equal payloads
        produce equal keys in every process.
    """

    kind: str
    payload: Mapping[str, Any]
    label: str = ""
    timeout: Optional[float] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    key: str = field(init=False)

    def __post_init__(self):
        if not self.kind:
            raise ModelError("job kind must be non-empty")
        digest = content_hash({"kind": self.kind,
                               "payload": dict(self.payload)})
        object.__setattr__(self, "key", digest)


@dataclass
class JobResult:
    """Outcome of executing one :class:`Job`.

    ``obs`` carries the worker-side observability delta when the job ran
    with ``repro.obs`` enabled: a ``"metrics"``
    :meth:`~repro.obs.metrics.MetricsRegistry.delta_since` payload and a
    ``"spans"`` count of spans the job finished.  Being a plain dict it
    crosses the process boundary with the rest of the result; the
    :class:`~repro.batch.executor.BatchRunner` folds it into the parent
    registry for pool backends.

    ``attempts``/``history`` are filled in by the retry machinery:
    ``attempts`` counts executions of this job in the producing run, and
    ``history`` records one ``{"attempt", "status", "error"}`` dict per
    failed earlier attempt — a poisoned result documents the whole
    trail that condemned it.
    """

    key: str
    kind: str
    label: str
    status: str
    data: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    traceback: str = ""
    duration: float = 0.0
    obs: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    history: list = field(default_factory=list)
    #: Correlation id of the serve request that produced this result
    #: ("" for results produced outside any request).
    request_id: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
            "data": self.data,
            "error": self.error,
            "traceback": self.traceback,
            "duration": self.duration,
            "obs": self.obs,
            "attempts": self.attempts,
            "history": self.history,
        }
        if self.request_id:
            record["request_id"] = self.request_id
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            key=data["key"],
            kind=data.get("kind", ""),
            label=data.get("label", ""),
            status=data.get("status", STATUS_FAILED),
            data=dict(data.get("data", {})),
            error=data.get("error", ""),
            traceback=data.get("traceback", ""),
            duration=data.get("duration", 0.0),
            obs=dict(data.get("obs", {})),
            attempts=data.get("attempts", 1),
            history=list(data.get("history", [])),
            request_id=data.get("request_id", ""),
        )


# ----------------------------------------------------------------------
# job-kind registry
# ----------------------------------------------------------------------
_JOB_KINDS: "Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]]" = {}


def register_job_kind(name: str):
    """Decorator registering a payload→data function under *name*."""
    def decorator(fn: Callable[[Dict[str, Any]], Dict[str, Any]]):
        _JOB_KINDS[name] = fn
        return fn
    return decorator


def job_kinds() -> "Tuple[str, ...]":
    return tuple(sorted(_JOB_KINDS))


#: Thread-local holder of the options of the job currently executing on
#: this thread.  Serve dispatcher threads run jobs concurrently in one
#: process, so a module-level variable would cross-talk; pool workers
#: receive the options with the pickled Job and set their own slot.
_JOB_OPTIONS = threading.local()


def current_job_options() -> "Dict[str, Any]":
    """Options of the :class:`Job` running on this thread (``{}``
    outside :func:`run_job`)."""
    return dict(getattr(_JOB_OPTIONS, "value", None) or {})


class JobTimeout(Exception):
    """Raised inside a worker when the per-job alarm fires."""


def run_job(job: Job) -> JobResult:
    """Execute *job*, capturing errors and wall time; never raises.

    With observability enabled, the metrics recorded while the job ran
    (and the number of spans it finished) are attached to the result as
    a serialisable ``obs`` delta, so pool workers — whose registries die
    with the process — still report back to the parent.
    """
    fn = _JOB_KINDS.get(job.kind)
    t0 = time.perf_counter()
    mark = None
    spans_before = 0
    dropped_before = 0
    if _obs.enabled:
        registry = _obs.metrics()
        mark = registry.mark()
        tracer = _obs.get_tracer()
        spans_before = len(tracer)
        dropped_before = tracer.dropped
        registry.counter(f"analysis.jobs.{job.kind}").inc()

    def finish(result: JobResult) -> JobResult:
        rid = _obs_context.current_request_id()
        if rid:
            result.request_id = rid
        if mark is not None and _obs.enabled:
            tracer = _obs.get_tracer()
            result.obs = {
                "metrics": _obs.metrics().delta_since(mark),
                "spans": len(tracer) - spans_before,
                "pid": os.getpid(),
            }
            if _obs.ship_worker_spans:
                # Serialise the spans this job finished (absolute
                # perf_counter times — comparable across processes on
                # one host) so the parent can adopt them onto a
                # per-worker lane.  Ring-buffer evictions since the
                # job started shift the slice start accordingly.
                from ..obs.export import span_to_dict

                evicted = tracer.dropped - dropped_before
                start = max(0, spans_before - evicted)
                spans = list(tracer.finished)[start:]
                result.obs["span_records"] = [
                    span_to_dict(span) for span in spans]
        return result

    if fn is None:
        return finish(JobResult(
            job.key, job.kind, job.label, STATUS_FAILED,
            error=f"unknown job kind {job.kind!r} "
                  f"(known: {', '.join(job_kinds())})"))
    _JOB_OPTIONS.value = dict(job.options)
    try:
        data = _call_with_timeout(fn, dict(job.payload), job.timeout)
    except JobTimeout:
        return finish(JobResult(
            job.key, job.kind, job.label, STATUS_TIMEOUT,
            error=f"job exceeded timeout of {job.timeout}s",
            duration=time.perf_counter() - t0))
    except Exception as exc:
        return finish(JobResult(
            job.key, job.kind, job.label, STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            duration=time.perf_counter() - t0))
    finally:
        _JOB_OPTIONS.value = None
    return finish(JobResult(job.key, job.kind, job.label, STATUS_OK,
                            data=data, duration=time.perf_counter() - t0))


def _call_with_timeout(fn, payload: "Dict[str, Any]",
                       timeout: Optional[float]) -> "Dict[str, Any]":
    """Run *fn* under a SIGALRM watchdog when a timeout is requested.

    The interval timer pre-empts pure-Python loops (a diverging fixed
    point included), which per-future timeouts in the parent cannot: a
    hung worker would keep its pool slot occupied forever.  On platforms
    without ``SIGALRM`` (or off the main thread) the job runs
    unguarded; the executor then falls back to post-hoc accounting.
    """
    if not timeout or timeout <= 0:
        return fn(payload)
    import signal
    import threading
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return fn(payload)

    def _alarm(signum, frame):
        raise JobTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(payload)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# TaskSpec serialisation (resource-level jobs)
# ----------------------------------------------------------------------
def taskspec_to_dict(spec: TaskSpec) -> "Dict[str, Any]":
    return {
        "name": spec.name,
        "c_min": spec.c_min,
        "c_max": spec.c_max,
        "event_model": model_to_dict(spec.event_model),
        "priority": spec.priority,
        "slot": spec.slot,
        "deadline": spec.deadline,
        "blocking": spec.blocking,
    }


def taskspec_from_dict(data: Mapping[str, Any]) -> TaskSpec:
    return TaskSpec(
        data["name"], data["c_min"], data["c_max"],
        model_from_dict(data["event_model"]),
        priority=data.get("priority", 0),
        slot=data.get("slot"),
        deadline=data.get("deadline"),
        blocking=data.get("blocking", 0.0))


# ----------------------------------------------------------------------
# built-in job kinds
# ----------------------------------------------------------------------
@register_job_kind("analyze")
def _run_analyze(payload: "Dict[str, Any]") -> "Dict[str, Any]":
    """Global compositional analysis of one serialised system.

    Payload: ``system`` (system dict), optional ``max_iterations``,
    optional ``on_failure`` (``"raise"`` default, or ``"degrade"`` to
    quarantine failing resources and return health + certificates in
    an ``"outcome"`` data key instead of failing the job).

    Job *option* ``incremental`` (a group name) routes the run through
    the named :func:`~repro.analysis.memo.memo_for` memo: adjacent jobs
    of one sweep reuse the local analyses of unchanged resources.
    Being an option, it never enters the job key — incremental results
    are bit-identical to cold ones.
    """
    from ..system.propagation import DEFAULT_MAX_ITERATIONS, analyze_system

    system = system_from_dict(payload["system"])
    on_failure = payload.get("on_failure", "raise")
    memo = None
    before = None
    group = current_job_options().get("incremental")
    if group:
        from ..analysis.memo import memo_for

        memo = memo_for(str(group))
        before = memo.stats()
    outcome = None
    result = analyze_system(
        system,
        max_iterations=payload.get("max_iterations",
                                   DEFAULT_MAX_ITERATIONS),
        on_failure=on_failure, memo=memo)
    if on_failure == "degrade":
        outcome = result
        result = outcome.result
    wcrt = {}
    utilization = {}
    for rr in result.resource_results.values():
        utilization[rr.resource] = rr.utilization
        for name, tr in rr.task_results.items():
            wcrt[name] = tr.r_max
    data = {
        "converged": result.converged,
        "iterations": result.iterations,
        "wcrt": wcrt,
        "worst_wcrt": max(wcrt.values()) if wcrt else 0.0,
        "utilization": utilization,
    }
    if outcome is not None:
        data["outcome"] = outcome.to_dict()
    if memo is not None and before is not None:
        after = memo.stats()
        reused = after["task_reuses"] - before["task_reuses"]
        total = after["tasks_total"] - before["tasks_total"]
        data["incremental"] = {
            "group": str(group),
            "reused_tasks": reused,
            "analyzed_tasks": total,
            "reuse_rate": reused / total if total else 0.0,
        }
    return data


@register_job_kind("wcet_scaling")
def _run_wcet_scaling(payload: "Dict[str, Any]") -> "Dict[str, Any]":
    """Sensitivity search: max uniform WCET inflation on one resource.

    Payload: ``scheduler`` (scheduler dict), ``tasks`` (TaskSpec dicts),
    ``deadlines``, optional ``precision``.
    """
    from ..analysis.sensitivity import DEFAULT_PRECISION, max_wcet_scaling

    scheduler = scheduler_from_dict(payload["scheduler"])
    tasks = [taskspec_from_dict(t) for t in payload["tasks"]]
    factor = max_wcet_scaling(
        scheduler, tasks, dict(payload["deadlines"]),
        precision=payload.get("precision", DEFAULT_PRECISION))
    return {"factor": factor}


@register_job_kind("task_slack")
def _run_task_slack(payload: "Dict[str, Any]") -> "Dict[str, Any]":
    """Sensitivity search: extra WCET one task can absorb.

    Payload: ``scheduler``, ``tasks``, ``task``, ``deadlines``,
    optional ``precision``.
    """
    from ..analysis.sensitivity import DEFAULT_PRECISION, task_wcet_slack

    scheduler = scheduler_from_dict(payload["scheduler"])
    tasks = [taskspec_from_dict(t) for t in payload["tasks"]]
    slack = task_wcet_slack(
        scheduler, tasks, payload["task"], dict(payload["deadlines"]),
        precision=payload.get("precision", DEFAULT_PRECISION))
    return {"slack": slack}


@register_job_kind("simulate")
def _run_simulate(payload: "Dict[str, Any]") -> "Dict[str, Any]":
    """Sim-vs-analysis validation of one serialised system.

    Analyses the system, simulates it under critical-instant arrivals
    for ``horizon`` time units, and reports both bounds per task plus a
    ``sound`` verdict (every observed response ≤ its analytic WCRT).
    """
    from ..sim.generators import worst_case_arrivals
    from ..sim.system_sim import simulate_system
    from ..system.propagation import analyze_system
    from ..timebase import EPS

    system = system_from_dict(payload["system"])
    horizon = float(payload["horizon"])
    analysis = analyze_system(system)
    arrivals = {name: worst_case_arrivals(src.model, horizon)
                for name, src in system.sources.items()}
    run = simulate_system(system, arrivals, horizon)

    observed = {}
    analytic = {}
    sound = True
    for task in run.responses.tasks():
        worst = run.responses.worst_case(task)
        bound = analysis.wcrt(task)
        observed[task] = worst
        if bound is not None:
            analytic[task] = bound
            sound = sound and worst <= bound + EPS
    return {
        "observed": observed,
        "analytic": analytic,
        "sound": sound,
        "iterations": analysis.iterations,
    }
