"""Predefined design spaces for the CLI, CI smoke runs, and benchmarks.

Each factory returns a ready-to-run :class:`~repro.batch.design_space.
DesignSpace`:

* :func:`quickstart_space` — a small task-graph sweep (WCET × period
  grid) that finishes in seconds even serially; the CI smoke target.
* :func:`rox08_space` — WCET/period headroom grid around the paper's
  evaluation system (section 6); heavier, a handful of points.
* :func:`synth_space` — builder-mode sweep over the synthetic gateway
  generator's structural knobs (signal count × frame count), i.e. the
  frame-packing axis of the design space.
* :func:`bench_space` — a mid-cost pipeline system sized so that one
  point costs tens of milliseconds: large enough for process fan-out to
  win, small enough that a 64-point sweep stays interactive.  Used by
  ``benchmarks/bench_batch_speedup.py``.
"""

from __future__ import annotations

from typing import Optional

from .._errors import ModelError
from ..analysis.spnp import SPNPScheduler
from ..analysis.spp import SPPScheduler
from ..eventmodels.standard import periodic, periodic_with_jitter
from ..system.model import System
from .design_space import Axis, DesignSpace, period_axis, wcet_axis


def pipeline_system(n_chains: int = 3, depth: int = 2,
                    base_period: float = 100.0, load: float = 0.09,
                    name: str = "pipeline") -> System:
    """``n_chains`` source→…→sink chains of length *depth* crossing a
    shared CPU and a shared bus — a parametric stand-in for a gateway
    pipeline with non-harmonic periods and accumulating jitter.

    *load* is the per-stage WCET as a fraction of the chain period
    (later stages are up-weighted), so total utilisation grows with
    ``n_chains * depth * load``; keep headroom if the surrounding sweep
    scales WCETs up or periods down.
    """
    if n_chains < 1 or depth < 1:
        raise ModelError("pipeline needs n_chains >= 1 and depth >= 1")
    system = System(name)
    system.add_resource("cpu", SPPScheduler())
    system.add_resource("bus", SPNPScheduler())
    for chain in range(n_chains):
        period = base_period * (1.0 + 0.37 * chain)
        src = f"src{chain}"
        system.add_source(src, periodic_with_jitter(
            period, 0.1 * period, name=src))
        upstream = src
        for stage in range(depth):
            task = f"t{chain}_{stage}"
            resource = "cpu" if stage % 2 == 0 else "bus"
            wcet = load * period * (1.0 + 0.5 * stage)
            system.add_task(task, resource, (0.5 * wcet, wcet),
                            [upstream], priority=chain * depth + stage + 1)
            upstream = task
    return system


def quickstart_space(cache_tag: str = "quickstart") -> DesignSpace:
    """16-point WCET × period grid over a 3-chain pipeline."""
    return DesignSpace(
        cache_tag,
        axes=[
            wcet_axis((0.6, 0.8, 1.0, 1.2)),
            period_axis((0.9, 1.0, 1.1, 1.25)),
        ],
        base=pipeline_system(n_chains=3, depth=2),
        job_kind="analyze",
    )


def rox08_space(variant: str = "hem") -> DesignSpace:
    """Headroom grid around the paper's section-6 evaluation system."""
    from ..examples_lib.rox08 import build_system
    return DesignSpace(
        f"rox08-{variant}",
        axes=[
            wcet_axis((0.9, 1.0, 1.1)),
            period_axis((1.0, 1.2)),
        ],
        base=build_system(variant),
        job_kind="analyze",
    )


def synth_space(variant: str = "hem") -> DesignSpace:
    """Structural sweep: signal count × frame count (packing density).

    Builder mode — every point regenerates the synthetic gateway with a
    different packing layout, the knob no dict transform can turn.
    """
    from ..examples_lib.synth import synth_system

    def build(n_signals: int, n_frames: int) -> System:
        return synth_system(n_signals, n_frames, variant)

    return DesignSpace(
        f"synth-{variant}",
        axes=[
            Axis("n_signals", values=(4, 6, 8)),
            Axis("n_frames", values=(1, 2)),
        ],
        builder=build,
        job_kind="analyze",
    )


def bench_space(side: int = 8, n_chains: int = 5, depth: int = 3,
                timeout: Optional[float] = None) -> DesignSpace:
    """``side × side`` WCET × period grid over a heavier pipeline.

    Default 64 points; each point costs tens of milliseconds of real
    fixed-point work, which is the regime where process fan-out pays.
    """
    wcet_levels = tuple(0.5 + 0.1 * i for i in range(side))
    period_levels = tuple(0.85 + 0.05 * i for i in range(side))
    return DesignSpace(
        "bench",
        axes=[
            wcet_axis(wcet_levels),
            period_axis(period_levels),
        ],
        base=pipeline_system(n_chains=n_chains, depth=depth, load=0.035,
                             name="bench_pipeline"),
        job_kind="analyze",
        timeout=timeout,
    )


#: CLI name → factory (no-argument call).
NAMED_SPACES = {
    "quickstart": quickstart_space,
    "rox08": rox08_space,
    "synth": synth_space,
    "bench": bench_space,
}
