"""Execution backends and the batch runner.

Two interchangeable backends execute :class:`~repro.batch.jobs.Job`
lists:

* :class:`SerialBackend` — in-process, deterministic order; the
  debugging baseline and the zero-dependency fallback.
* :class:`ProcessPoolBackend` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Jobs carry serialised systems (plain
  dicts), so nothing but JSON-compatible data crosses the process
  boundary; workers rebuild the system and run the ordinary engine.

Both enforce the per-job timeout (pre-emptively via ``SIGALRM`` inside
:func:`~repro.batch.jobs.run_job` where the platform allows, post-hoc
otherwise) and both capture failures as ``failed`` results instead of
raising, so a sweep always runs to completion.

:class:`BatchRunner` ties a backend to a persistent
:class:`~repro.batch.store.ResultStore`: results stored as ``ok`` are
served from the cache (cross-run memoisation — this is what makes a
killed sweep resumable), everything else is (re-)executed and written
back immediately.  Counters, the cache hit rate, and a per-job latency
histogram are emitted through :mod:`repro.obs` when observability is
enabled.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs as _obs
from .._errors import ModelError
from ..obs.bus import BUS as _BUS
from .jobs import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_TIMEOUT,
    Job,
    JobResult,
    run_job,
)
from .store import ResultStore

#: Signature of the per-result callback backends invoke as jobs finish.
OnResult = Callable[[JobResult], None]


def _obs_summary(result: JobResult) -> Optional[Dict[str, int]]:
    """Condense a result's worker-side ``obs`` delta for the ``job``
    bus event (engine effort the live aggregator folds into totals)."""
    if not result.obs:
        return None
    counters = result.obs.get("metrics", {}).get("counters", {})
    return {
        "iterations": counters.get("propagation.iterations", 0),
        "model_cache_hits": counters.get("eventmodels.cache.hits", 0),
        "model_cache_misses": counters.get(
            "eventmodels.cache.misses", 0),
        "spans": result.obs.get("spans", 0),
    }


def _publish_job(result: JobResult, cached: bool) -> None:
    """One ``job`` lifecycle event per unique point, cached or not."""
    event = {
        "type": "job", "key": result.key, "kind": result.kind,
        "label": result.label, "status": result.status,
        "cached": cached, "duration": result.duration,
        "attempts": result.attempts,
    }
    if result.error:
        event["error"] = result.error
    summary = _obs_summary(result)
    if summary is not None:
        event["obs"] = summary
    _BUS.publish(event)


def _enforce_budget(job: Job, result: JobResult) -> JobResult:
    """Post-hoc timeout accounting for platforms without ``SIGALRM``.

    A job that finished but blew its wall-time budget is never recorded
    ``ok`` — otherwise resume semantics would differ between platforms
    that can pre-empt and platforms that cannot.
    """
    if (result.status == STATUS_OK and job.timeout
            and result.duration > job.timeout):
        return JobResult(result.key, result.kind, result.label,
                         STATUS_TIMEOUT,
                         error=f"job exceeded timeout of {job.timeout}s "
                               f"(ran {result.duration:.3f}s)",
                         duration=result.duration,
                         request_id=result.request_id)
    return result


class SerialBackend:
    """Run jobs one after another in the calling process."""

    name = "serial"
    workers = 1
    #: Serial jobs write straight into the parent registry, so their
    #: ``obs`` deltas must NOT be merged back (double counting).
    merges_worker_obs = False

    def run(self, jobs: Sequence[Job], on_result: OnResult) -> None:
        for job in jobs:
            # Serial jobs record metrics live in the parent registry.
            # A timed-out job's side effects must not survive — least
            # of all on the post-hoc path (no SIGALRM available, e.g.
            # off the main thread), where the job ran to completion
            # unguarded before being declared over budget.
            mark = _obs.metrics().mark() if _obs.enabled else None
            result = run_job(job)
            enforced = _enforce_budget(job, result)
            if mark is not None and enforced.status == STATUS_TIMEOUT:
                _obs.metrics().discard_since(mark)
            on_result(enforced)


class ProcessPoolBackend:
    """Fan jobs out across worker processes.

    Parameters
    ----------
    workers:
        Pool size (must be >= 1).
    mp_context:
        Optional :mod:`multiprocessing` context.  The platform default
        (``fork`` on Linux) keeps worker start-up cheap; pass a
        ``spawn`` context for stricter isolation.
    """

    name = "process"
    #: Worker registries die with their process; the runner folds each
    #: result's ``obs`` delta into the parent registry.
    merges_worker_obs = True

    def __init__(self, workers: int, mp_context=None):
        if workers < 1:
            raise ModelError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._mp_context = mp_context

    def run(self, jobs: Sequence[Job], on_result: OnResult) -> None:
        if not jobs:
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=self._mp_context) as pool:
            futures = {pool.submit(run_job, job): job for job in jobs}
            for future in as_completed(futures):
                job = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    # Worker death (BrokenProcessPool) or a payload that
                    # failed to cross the boundary: record, keep going.
                    result = JobResult(
                        job.key, job.kind, job.label, STATUS_FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc())
                on_result(_enforce_budget(job, result))


def make_backend(workers: int = 0, mp_context=None):
    """``workers <= 0`` → :class:`SerialBackend`; otherwise a pool."""
    if workers <= 0:
        return SerialBackend()
    return ProcessPoolBackend(workers, mp_context=mp_context)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`BatchRunner.run` call."""

    results: Dict[str, JobResult] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    poisoned: List[str] = field(default_factory=list)
    wall: float = 0.0

    def __getitem__(self, key: str) -> JobResult:
        return self.results[key]

    def result_for(self, job: Job) -> Optional[JobResult]:
        return self.results.get(job.key)

    @property
    def total(self) -> int:
        return len(self.order)

    @property
    def cache_hit_rate(self) -> float:
        return len(self.cached) / self.total if self.total else 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        text = (f"{self.total} jobs: {len(self.cached)} cached, "
                f"{len(self.executed)} executed, {len(self.failed)} "
                f"failed")
        if self.poisoned:
            text += f" ({len(self.poisoned)} poisoned)"
        return (f"{text} ({self.cache_hit_rate:.0%} cache hit rate, "
                f"{self.wall:.2f}s)")


class BatchRunner:
    """Memoising batch executor: store in front, backend behind.

    ``run`` deduplicates jobs by content key, serves keys whose stored
    status is ``ok`` from the cache, executes the rest through the
    backend, and checkpoints every finished result into the store
    before moving on.  Failed or timed-out points are recorded but stay
    retryable: a subsequent run (the *resume* path) re-executes exactly
    the failed/missing keys.

    With a :class:`~repro.resilience.retry.RetryPolicy` attached, the
    runner distinguishes *transient* failures (worker crashes, broken
    pools, timeouts — retried in backoff rounds up to the attempt
    budget) from *deterministic* ones (engine errors that would repeat
    identically — poisoned on first sight).  Poisoned results land in
    the store with their full attempt history and are served from cache
    on later runs (pass ``retry_poisoned=True`` to re-execute them).
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 backend=None, retry=None, retry_poisoned: bool = False):
        self.store = store
        self.backend = backend or SerialBackend()
        self.retry = retry
        self.retry_poisoned = retry_poisoned

    def run(self, jobs: Sequence[Job],
            progress: Optional[OnResult] = None) -> BatchReport:
        unique: "Dict[str, Job]" = {}
        for job in jobs:
            unique.setdefault(job.key, job)

        report = BatchReport(order=list(unique))
        to_run: "List[Job]" = []
        for key, job in unique.items():
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None and cached.ok:
                report.results[key] = cached
                report.cached.append(key)
            elif (cached is not None
                    and cached.status == STATUS_POISONED
                    and not self.retry_poisoned):
                # A known mine: don't step on it again.
                report.results[key] = cached
                report.cached.append(key)
                report.failed.append(key)
                report.poisoned.append(key)
            else:
                to_run.append(job)

        if _obs.enabled:
            registry = _obs.metrics()
            registry.counter("batch.cache.hits").inc(len(report.cached))
            registry.counter("batch.cache.misses").inc(len(to_run))
            registry.counter("batch.jobs.submitted").inc(len(to_run))
            registry.gauge("batch.workers").set(
                getattr(self.backend, "workers", 1))
            if _BUS.active:
                _BUS.publish({
                    "type": "sweep", "phase": "start",
                    "total": len(unique), "cached": len(report.cached),
                    "to_run": len(to_run),
                    "workers": getattr(self.backend, "workers", 1),
                    "backend": getattr(self.backend, "name", "?"),
                })
                # Cache hits never reach the backend, so their
                # lifecycle events are published up front.
                for key in report.order:
                    cached_result = report.results.get(key)
                    if cached_result is not None:
                        _publish_job(cached_result, cached=True)

        attempts: "Dict[str, int]" = {}
        histories: "Dict[str, List[dict]]" = {}
        retry_queue: "List[Job]" = []

        def record(result: JobResult) -> None:
            if self.store is not None:
                self.store.put(result)
            report.results[result.key] = result
            report.executed.append(result.key)
            if not result.ok:
                report.failed.append(result.key)
                if result.status == STATUS_POISONED:
                    report.poisoned.append(result.key)
            if _obs.enabled:
                registry = _obs.metrics()
                if result.ok:
                    registry.counter("batch.jobs.completed").inc()
                elif result.status == STATUS_TIMEOUT:
                    registry.counter("batch.jobs.timeout").inc()
                    registry.counter("batch.jobs.failed").inc()
                else:
                    registry.counter("batch.jobs.failed").inc()
                if result.status == STATUS_POISONED:
                    registry.counter("batch.poisoned").inc()
                registry.histogram("batch.job_seconds").observe(
                    result.duration)
                if result.obs and getattr(self.backend,
                                          "merges_worker_obs", False):
                    registry.merge_delta(result.obs.get("metrics", {}))
                    spans = result.obs.get("spans", 0)
                    if spans:
                        registry.counter("batch.worker.spans").inc(spans)
                    records = result.obs.get("span_records")
                    if records:
                        # Adopt worker spans onto a per-worker lane so
                        # Chrome/Perfetto exports keep worker activity
                        # distinct from the parent's threads.
                        tracer = _obs.get_tracer()
                        worker = str(result.obs.get("pid", "?"))
                        for record in records:
                            tracer.adopt(record, worker=worker)
                if _BUS.active:
                    _publish_job(result, cached=False)
            if progress is not None:
                progress(result)

        def on_result(result: JobResult) -> None:
            key = result.key
            attempts[key] = attempts.get(key, 0) + 1
            result.attempts = attempts[key]
            result.history = list(histories.get(key, ()))
            if self.retry is None or result.ok:
                record(result)
                return
            if self.retry.retryable(result, attempts[key]):
                # Transient failure with budget left: queue for the
                # next backoff round; nothing recorded yet.
                histories.setdefault(key, []).append({
                    "attempt": attempts[key],
                    "status": result.status,
                    "error": result.error,
                })
                retry_queue.append(unique[key])
                if _obs.enabled:
                    _obs.metrics().counter("batch.retries").inc()
                    if _BUS.active:
                        _BUS.publish({
                            "type": "job_retry", "key": key,
                            "label": result.label,
                            "attempt": attempts[key],
                            "status": result.status,
                            "error": result.error,
                        })
                return
            # Deterministic failure, or a transient one that exhausted
            # its attempts: quarantine as poisoned.
            record(JobResult(
                key, result.kind, result.label, STATUS_POISONED,
                error=result.error, traceback=result.traceback,
                duration=result.duration, attempts=attempts[key],
                history=list(histories.get(key, ())),
                request_id=result.request_id))

        t0 = time.perf_counter()
        try:
            pending = to_run
            while pending:
                retry_queue.clear()
                self.backend.run(pending, on_result)
                pending = list(retry_queue)
                if pending:
                    # attempts[key] failures so far → this is retry
                    # number attempts[key]; one sleep covers the round.
                    delay = max(
                        self.retry.delay(attempts[job.key], job.key)
                        for job in pending)
                    self.retry.sleep(delay)
        finally:
            report.wall = time.perf_counter() - t0
            if self.store is not None:
                self.store.close()
            if _obs.enabled and _BUS.active:
                _BUS.publish({
                    "type": "sweep", "phase": "end",
                    "total": report.total, "wall": report.wall,
                    "cached": len(report.cached),
                    "executed": len(report.executed),
                    "failed": len(report.failed),
                    "poisoned": len(report.poisoned),
                })
        return report
