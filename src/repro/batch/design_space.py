"""Design-space exploration driver: axes → points → jobs → tables.

A :class:`DesignSpace` describes a family of system configurations as a
base design plus named :class:`Axis` knobs — task WCET scale factors,
source period scale factors, frame-packing parameters, anything a
function can apply.  The driver enumerates points (full grid or random
sample), derives one content-addressed analysis job per point, feeds
them to a :class:`~repro.batch.executor.BatchRunner`, and aggregates
the outcomes into :mod:`repro.viz` tables.

Two ways to materialise a point:

* **dict-transform mode** (``base=``): the base system is serialised
  once; each axis ``apply(system_dict, value)`` mutates a deep copy.
  Right for "scale these WCETs / periods" sweeps over a fixed topology.
* **builder mode** (``builder=``): a callable receives the point as
  keyword arguments and returns a fresh :class:`~repro.system.System`.
  Right for structural axes — number of signals, frames, packing
  strategy — where no dict edit captures the change.

Either way only the resulting *serialised dict* enters the job payload,
so points parallelise across processes and memoise across runs for
free (equal dicts → equal job keys → cache hits).
"""

from __future__ import annotations

import copy
import itertools
import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .._errors import ModelError
from ..system.model import System
from ..system.serialize import system_to_dict
from .executor import BatchReport, BatchRunner
from .jobs import Job


@dataclass(frozen=True)
class Axis:
    """One named knob of a design space.

    Attributes
    ----------
    name:
        Point-dict key (and builder keyword, in builder mode).
    values:
        Discrete levels for grid enumeration (also sampled uniformly by
        :meth:`DesignSpace.sample` when *bounds* is unset).
    bounds:
        ``(lo, hi)`` continuous range for random sampling; such an axis
        cannot be grid-enumerated.
    apply:
        Dict-transform hook ``apply(system_dict, value)`` mutating the
        (already copied) serialised system in place.  Unused in builder
        mode.
    """

    name: str
    values: Optional[Tuple[Any, ...]] = None
    bounds: Optional[Tuple[float, float]] = None
    apply: Optional[Callable[[Dict[str, Any], Any], None]] = None

    def __post_init__(self):
        if self.values is None and self.bounds is None:
            raise ModelError(f"axis {self.name}: needs values or bounds")
        if self.values is not None and len(self.values) == 0:
            raise ModelError(f"axis {self.name}: empty value list")
        if self.values is not None and not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    def grid_values(self) -> "Tuple[Any, ...]":
        if self.values is None:
            raise ModelError(
                f"axis {self.name}: continuous axes (bounds only) cannot "
                f"be grid-enumerated; give explicit values or sample()")
        return self.values

    def sample_value(self, rng: random.Random) -> Any:
        if self.bounds is not None:
            return rng.uniform(*self.bounds)
        return rng.choice(self.values)


# ----------------------------------------------------------------------
# built-in dict-transform axes
# ----------------------------------------------------------------------
def wcet_axis(values: Sequence[float],
              tasks: Optional[Sequence[str]] = None,
              name: str = "wcet_scale") -> Axis:
    """Scale ``c_min``/``c_max`` of *tasks* (default: every task)."""
    wanted = set(tasks) if tasks is not None else None

    def apply(system_dict: "Dict[str, Any]", factor: Any) -> None:
        for task_name, task in system_dict.get("tasks", {}).items():
            if wanted is None or task_name in wanted:
                task["c_min"] = task["c_min"] * factor
                task["c_max"] = task["c_max"] * factor

    return Axis(name, values=tuple(values), apply=apply)


def period_axis(values: Sequence[float],
                sources: Optional[Sequence[str]] = None,
                name: str = "period_scale") -> Axis:
    """Scale the period/jitter/d_min of standard-model *sources*
    (default: every standard-model source); curve sources are skipped —
    an arbitrary curve has no canonical period knob."""
    wanted = set(sources) if sources is not None else None

    def apply(system_dict: "Dict[str, Any]", factor: Any) -> None:
        for src_name, model in system_dict.get("sources", {}).items():
            if wanted is not None and src_name not in wanted:
                continue
            if model.get("type") != "standard":
                continue
            model["period"] = model["period"] * factor
            model["jitter"] = model["jitter"] * factor
            model["d_min"] = model["d_min"] * factor

    return Axis(name, values=tuple(values), apply=apply)


def priority_axis(task: str, values: Sequence[int],
                  name: Optional[str] = None) -> Axis:
    """Sweep the static priority of one task."""

    def apply(system_dict: "Dict[str, Any]", priority: Any) -> None:
        try:
            system_dict["tasks"][task]["priority"] = priority
        except KeyError:
            raise ModelError(f"priority axis: unknown task {task!r}")

    return Axis(name or f"priority[{task}]", values=tuple(values),
                apply=apply)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
class DesignSpace:
    """A named family of system configurations plus the job recipe."""

    def __init__(self, name: str, axes: Sequence[Axis],
                 base: Optional[Union[System, Dict[str, Any]]] = None,
                 builder: Optional[Callable[..., System]] = None,
                 job_kind: str = "analyze",
                 job_options: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None,
                 incremental: bool = False):
        if (base is None) == (builder is None):
            raise ModelError(
                "design space needs exactly one of base= or builder=")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate axis names in {names}")
        self.name = name
        self.axes = tuple(axes)
        self.builder = builder
        self.job_kind = job_kind
        self.job_options = dict(job_options or {})
        self.timeout = timeout
        # Incremental re-analysis rides on Job *options* (execution
        # hints), never on job_options (which merge into the payload and
        # hence the content key): an incremental sweep point and a cold
        # one must share one cache entry.
        self.incremental = incremental
        if isinstance(base, System):
            self._base_dict: Optional[Dict[str, Any]] = system_to_dict(base)
        else:
            self._base_dict = copy.deepcopy(base) if base is not None else None
        if self._base_dict is not None:
            for axis in self.axes:
                if axis.apply is None:
                    raise ModelError(
                        f"axis {axis.name}: dict-transform mode needs an "
                        f"apply= hook (or use builder mode)")

    # ------------------------------------------------------------------
    # point enumeration
    # ------------------------------------------------------------------
    def grid(self) -> "Iterator[Dict[str, Any]]":
        """Full cartesian product over every axis' discrete values."""
        levels = [axis.grid_values() for axis in self.axes]
        for combo in itertools.product(*levels):
            yield dict(zip((a.name for a in self.axes), combo))

    def grid_size(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.grid_values())
        return size

    def sample(self, n: int, seed: int = 0) -> "List[Dict[str, Any]]":
        """*n* random points; deterministic for a given *seed*.

        Discrete axes sample uniformly over their levels, continuous
        axes uniformly over their bounds.  Duplicates are collapsed
        (points are content-addressed anyway), so fewer than *n* points
        can come back from small discrete spaces.
        """
        if n < 1:
            raise ModelError(f"need at least one sample, got {n}")
        rng = random.Random(seed)
        points: "List[Dict[str, Any]]" = []
        seen = set()
        for _ in range(n):
            point = {a.name: a.sample_value(rng) for a in self.axes}
            fingerprint = tuple(sorted((k, repr(v))
                                       for k, v in point.items()))
            if fingerprint not in seen:
                seen.add(fingerprint)
                points.append(point)
        return points

    # ------------------------------------------------------------------
    # point → job
    # ------------------------------------------------------------------
    def system_dict_for(self, point: "Dict[str, Any]") -> "Dict[str, Any]":
        if self.builder is not None:
            return system_to_dict(self.builder(**point))
        system_dict = copy.deepcopy(self._base_dict)
        for axis in self.axes:
            axis.apply(system_dict, point[axis.name])
        return system_dict

    def job_for(self, point: "Dict[str, Any]") -> Job:
        payload = {"system": self.system_dict_for(point)}
        payload.update(self.job_options)
        label = ", ".join(f"{k}={_fmt(v)}" for k, v in point.items())
        options = ({"incremental": f"space:{self.name}"}
                   if self.incremental else {})
        return Job(self.job_kind, payload, label=label,
                   timeout=self.timeout, options=options)

    def jobs(self, points: Optional[Sequence[Dict[str, Any]]] = None
             ) -> "List[Tuple[Dict[str, Any], Job]]":
        if points is None:
            points = list(self.grid())
        return [(point, self.job_for(point)) for point in points]

    # ------------------------------------------------------------------
    def run(self, runner: BatchRunner,
            points: Optional[Sequence[Dict[str, Any]]] = None,
            progress=None) -> "DesignSpaceResult":
        pairs = self.jobs(points)
        report = runner.run([job for _, job in pairs], progress=progress)
        return DesignSpaceResult(self, [p for p, _ in pairs],
                                 [j for _, j in pairs], report)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return format(value, ".4g")
    return str(value)


#: Metrics shown by default per job kind (scalar keys of result data).
_DEFAULT_METRICS = {
    "analyze": ("converged", "iterations", "worst_wcrt"),
    "simulate": ("sound", "iterations"),
    "wcet_scaling": ("factor",),
    "task_slack": ("slack",),
}


@dataclass
class DesignSpaceResult:
    """Points, their jobs, and the batch report — plus aggregation."""

    space: DesignSpace
    points: List[Dict[str, Any]]
    jobs: List[Job]
    report: BatchReport = field(repr=False)

    def outcomes(self, metrics: Optional[Sequence[str]] = None
                 ) -> "List[Dict[str, Any]]":
        """One flat dict per point: status plus selected data scalars."""
        if metrics is None:
            metrics = _DEFAULT_METRICS.get(self.space.job_kind)
        rows = []
        for job in self.jobs:
            result = self.report.result_for(job)
            row: "Dict[str, Any]" = {"status": result.status
                                     if result else "missing"}
            data = result.data if result else {}
            if metrics is None:
                wanted = [k for k, v in sorted(data.items())
                          if not isinstance(v, (dict, list))]
            else:
                wanted = list(metrics)
            for key in wanted:
                row[key] = data.get(key)
            rows.append(row)
        return rows

    def table(self, metrics: Optional[Sequence[str]] = None,
              floatfmt: str = ".4g") -> str:
        """Render the sweep as an aligned :mod:`repro.viz` table."""
        from ..viz.tables import sweep_table
        return sweep_table(self.points, self.outcomes(metrics),
                           floatfmt=floatfmt)

    def best(self, metric: str, minimize: bool = False
             ) -> "Tuple[Dict[str, Any], Any]":
        """The (point, value) with the extremal *metric* among ok runs."""
        candidates = []
        for point, job in zip(self.points, self.jobs):
            result = self.report.result_for(job)
            if result is not None and result.ok and metric in result.data:
                candidates.append((point, result.data[metric]))
        if not candidates:
            raise ModelError(
                f"no successful point carries metric {metric!r}")
        chooser = min if minimize else max
        return chooser(candidates, key=lambda pair: pair[1])
