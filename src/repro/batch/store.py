"""Persistent result store: JSONL log + hash index under a cache dir.

Layout of a cache directory::

    <cache_dir>/
        results.jsonl   # one JobResult per line, append-only
        index.json      # {"size": <jsonl bytes>, "offsets": {key: off}}

``results.jsonl`` is the source of truth: every finished job is
appended (and flushed) immediately, so a sweep killed mid-flight loses
at most the job that was in progress.  ``index.json`` is a rebuildable
accelerator mapping each job key to the byte offset of its *latest*
line; when it matches the log size the store seeks instead of scanning.
A stale or missing index (crash before checkpoint, hand-edited log)
triggers a full rescan that tolerates a truncated final line.

Cross-run memoisation and checkpoint/resume both fall out of the same
mechanism: :meth:`ResultStore.get` returns whatever the log last said
about a key, and the runner skips keys whose stored status is ``ok``.

Concurrent writers are safe at two levels.  Within one process every
public method holds an internal lock, so the serve daemon's dispatcher
threads may share a single store.  Across processes each append takes
an ``fcntl`` advisory exclusive lock on the log for the duration of
the *seek-to-end → write → fsync* sequence, so two processes appending
simultaneously can never interleave torn records — and the offset each
writer indexes is the offset its line really landed at.  (On platforms
without ``fcntl`` the lock degrades to ``O_APPEND`` semantics, which
POSIX already makes atomic for the line sizes involved.)
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # pragma: no cover - platform gate
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    _fcntl = None

from .._errors import ModelError
from .jobs import STATUS_OK, JobResult


def _lock_append(fh) -> None:
    """Advisory exclusive lock over the whole log (blocking)."""
    if _fcntl is not None:
        _fcntl.lockf(fh, _fcntl.LOCK_EX)


def _unlock_append(fh) -> None:
    if _fcntl is not None:
        _fcntl.lockf(fh, _fcntl.LOCK_UN)

RESULTS_NAME = "results.jsonl"
INDEX_NAME = "index.json"

#: Rewrite the on-disk index every this many appended results.
CHECKPOINT_EVERY = 32


class ResultStore:
    """Append-only store of :class:`JobResult` records keyed by job key."""

    def __init__(self, cache_dir: Union[str, Path],
                 checkpoint_every: int = CHECKPOINT_EVERY):
        if checkpoint_every < 1:
            raise ModelError("checkpoint_every must be >= 1")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._results_path = self.cache_dir / RESULTS_NAME
        self._index_path = self.cache_dir / INDEX_NAME
        self._checkpoint_every = checkpoint_every
        self._offsets: "Dict[str, int]" = {}
        self._cache: "Dict[str, JobResult]" = {}
        self._puts_since_checkpoint = 0
        self._lock = threading.RLock()
        #: Byte position up to which the log's records are reflected in
        #: ``_offsets``.  Another process may append past this point;
        #: :meth:`put` absorbs any such gap while holding the append
        #: lock, and the on-disk index records *this* size so a log
        #: grown behind our back invalidates the checkpoint.
        self._indexed_size = 0
        self._load()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self._results_path.exists():
            return
        size = self._results_path.stat().st_size
        index = self._read_index()
        if index is not None and index.get("size") == size:
            self._offsets = {str(k): int(v)
                            for k, v in index.get("offsets", {}).items()}
            self._indexed_size = size
            return
        self._rescan()
        self._write_index()

    def _read_index(self) -> Optional[dict]:
        try:
            with open(self._index_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _rescan(self) -> None:
        """Rebuild key→offset from the log; last write per key wins.

        A torn final line (process killed mid-append) is ignored — the
        job it described simply reruns.
        """
        self._offsets.clear()
        self._cache.clear()
        with open(self._results_path, "rb") as fh:
            offset = fh.tell()
            for raw in fh:
                try:
                    record = json.loads(raw.decode("utf-8"))
                    key = record["key"]
                except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                        TypeError):
                    offset = fh.tell()
                    continue
                self._offsets[key] = offset
                offset = fh.tell()
        self._indexed_size = offset

    def _absorb_foreign(self, fh, start: int, end: int) -> None:
        """Fold records another process appended in ``[start, end)``
        into the in-memory index.  Called with the append lock held, so
        every line in the gap is complete.

        Reads through the *locked* descriptor with ``os.pread`` on
        purpose: POSIX drops every advisory lock a process holds on a
        file as soon as the process closes *any* descriptor for it, so
        opening (and closing) a second read handle here would silently
        release the append lock mid-critical-section.
        """
        raw = os.pread(fh.fileno(), end - start, start)
        offset = start
        for line in raw.splitlines(keepends=True):
            if line.endswith(b"\n"):
                try:
                    record = json.loads(line.decode("utf-8"))
                    self._offsets[record["key"]] = offset
                except (json.JSONDecodeError, UnicodeDecodeError,
                        KeyError, TypeError):  # pragma: no cover
                    pass  # defensive: an unlocked writer tore a line
            offset += len(line)

    def _write_index(self) -> None:
        # The recorded size is the absorbed byte count, NOT the stat
        # size: if a foreign process appends after our last put, the
        # next open sees a mismatch and rescans instead of trusting an
        # index that is silently missing the foreign records.
        payload = {"size": self._indexed_size, "offsets": self._offsets}
        # Unique temp name per process: two stores checkpointing the
        # same cache dir concurrently must not steal each other's temp
        # file between write and rename.
        tmp = self._index_path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self._index_path)
        self._puts_since_checkpoint = 0

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def keys(self) -> "List[str]":
        with self._lock:
            return list(self._offsets)

    def get(self, key: str) -> Optional[JobResult]:
        """Latest stored result for *key*, or ``None``."""
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            offset = self._offsets.get(key)
            if offset is None:
                return None
            with open(self._results_path, "rb") as fh:
                fh.seek(offset)
                raw = fh.readline()
            result = JobResult.from_dict(json.loads(raw.decode("utf-8")))
            self._cache[key] = result
            return result

    def completed_keys(self) -> "List[str]":
        """Keys whose stored status is ``ok`` (resume skips these)."""
        return [k for k in self.keys() if self.get(k).ok]

    def results(self) -> "Iterator[JobResult]":
        for key in self.keys():
            yield self.get(key)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def put(self, result: JobResult) -> None:
        """Append *result* to the log (flushed) and update the index.

        The append holds the cross-process advisory lock from before
        the end-of-file seek until after the fsync: concurrent writers
        serialise whole lines (no torn/interleaved records), and the
        offset recorded in the index is the offset this record really
        occupies even when another process appended in between.
        """
        line = json.dumps(result.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            # "a+b", not "ab": the absorb path preads foreign records
            # through this same (locked) descriptor.
            with open(self._results_path, "a+b") as fh:
                _lock_append(fh)
                try:
                    fh.seek(0, os.SEEK_END)
                    offset = fh.tell()
                    if offset > self._indexed_size:
                        self._absorb_foreign(fh, self._indexed_size,
                                             offset)
                    encoded = line.encode("utf-8")
                    fh.write(encoded)
                    fh.flush()
                    os.fsync(fh.fileno())
                finally:
                    _unlock_append(fh)
            self._indexed_size = offset + len(encoded)
            self._offsets[result.key] = offset
            self._cache[result.key] = result
            self._puts_since_checkpoint += 1
            if self._puts_since_checkpoint >= self._checkpoint_every:
                self._write_index()

    def clear(self) -> None:
        """Drop every stored result (a fresh, non-resumed run)."""
        with self._lock:
            self._offsets.clear()
            self._cache.clear()
            for path in (self._results_path, self._index_path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            self._puts_since_checkpoint = 0
            self._indexed_size = 0

    def close(self) -> None:
        """Checkpoint the index; the store stays usable afterwards."""
        with self._lock:
            self._write_index()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ok = sum(1 for k in self._offsets if self.get(k).ok)
        return (f"<ResultStore {self.cache_dir} {len(self._offsets)} "
                f"results ({ok} ok)>")
