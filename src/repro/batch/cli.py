"""``python -m repro batch`` — run a design-space sweep from the shell.

::

    python -m repro batch quickstart --workers 4
    python -m repro batch rox08 --resume
    python -m repro batch synth --sample 4 --seed 7
    python -m repro batch bench --workers 4 --cache-dir /tmp/bench

Targets are the predefined spaces in :mod:`repro.batch.spaces`.  The
result cache lives under ``--cache-dir`` (default
``.repro-batch/<target>``); without ``--resume`` the cache is cleared
first, with it previously completed points are served from the store
and only failed or missing points are re-executed.  Exit status is 0
when every point succeeded, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .. import obs as _obs
from .executor import BatchRunner, make_backend
from .spaces import NAMED_SPACES
from .store import ResultStore

DEFAULT_CACHE_ROOT = ".repro-batch"


def batch_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro batch",
        description="Run a predefined design-space sweep through the "
                    "batch engine.")
    parser.add_argument(
        "target", choices=sorted(NAMED_SPACES),
        help="which predefined design space to sweep")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes (0 = serial, the default)")
    parser.add_argument(
        "--resume", action="store_true",
        help="keep the existing cache: completed points are skipped, "
             "failed/missing points re-run")
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"result cache directory (default: "
             f"{DEFAULT_CACHE_ROOT}/<target>)")
    parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="random-sample N points instead of the full grid")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="sampling seed (with --sample)")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-time budget")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-point progress lines")
    args = parser.parse_args(argv)

    space = NAMED_SPACES[args.target]()
    if args.timeout is not None:
        space.timeout = args.timeout
    points = (space.sample(args.sample, seed=args.seed)
              if args.sample is not None else list(space.grid()))

    cache_dir = args.cache_dir or f"{DEFAULT_CACHE_ROOT}/{args.target}"
    store = ResultStore(cache_dir)
    if not args.resume:
        store.clear()

    runner = BatchRunner(store=store,
                         backend=make_backend(args.workers))

    def progress(result) -> None:
        if not args.quiet:
            marker = "." if result.ok else "!"
            print(f"  [{marker}] {result.label or result.key[:12]} "
                  f"({result.status}, {result.duration:.3f}s)")

    _obs.configure(enabled=True, reset=True)
    try:
        sweep = space.run(runner, points=points, progress=progress)
    finally:
        _obs.configure(enabled=False)

    print(f"\n=== {space.name}: {len(points)} points, "
          f"{runner.backend.name} backend "
          f"({getattr(runner.backend, 'workers', 1)} worker(s)) ===")
    print(sweep.table())
    print(f"\n{sweep.report.summary()}")
    print(f"cache: {cache_dir}")

    snapshot = _obs.metrics().snapshot()
    counters = snapshot["counters"]
    hist = snapshot["histograms"].get("batch.job_seconds")
    if hist and hist["count"]:
        print(f"job latency: mean {hist['mean']:.3f}s, "
              f"p90 {hist['p90']:.3f}s, max {hist['max']:.3f}s "
              f"over {hist['count']} executed")
    timeouts = counters.get("batch.jobs.timeout", 0)
    if timeouts:
        print(f"timeouts: {timeouts}")
    if sweep.report.failed:
        print(f"\nFAILED points ({len(sweep.report.failed)}):",
              file=sys.stderr)
        for key in sweep.report.failed:
            result = sweep.report.results[key]
            print(f"  {result.label or key}: {result.error}",
                  file=sys.stderr)
        return 1
    return 0
