"""``python -m repro batch`` — run a design-space sweep from the shell.

::

    python -m repro batch quickstart --workers 4
    python -m repro batch rox08 --resume
    python -m repro batch synth --sample 4 --seed 7
    python -m repro batch bench --workers 4 --cache-dir /tmp/bench

Targets are the predefined spaces in :mod:`repro.batch.spaces`.  The
result cache lives under ``--cache-dir`` (default
``.repro-batch/<target>``); without ``--resume`` the cache is cleared
first, with it previously completed points are served from the store
and only failed or missing points are re-executed.  Exit status is 0
when every point succeeded, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .. import obs as _obs
from ..obs.aggregate import LiveAggregator
from .executor import BatchRunner, make_backend
from .spaces import NAMED_SPACES
from .store import ResultStore

DEFAULT_CACHE_ROOT = ".repro-batch"

#: Seconds between summary lines on the non-TTY fallback path.
FALLBACK_INTERVAL = 2.0


class ProgressLine:
    """Single rewriting status line driven by a :class:`LiveAggregator`.

    On a TTY the line is redrawn in place (``\\r``) after every
    finished point, so a 4-worker sweep no longer interleaves one
    write per point; elsewhere (CI logs, pipes) it degrades to a
    summary line every couple of seconds.  ``quiet`` suppresses
    everything.
    """

    def __init__(self, aggregator: LiveAggregator, quiet: bool = False,
                 stream=None, interval: float = FALLBACK_INTERVAL,
                 clock=time.monotonic):
        self.aggregator = aggregator
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stdout
        self.interval = interval
        #: Monotonic clock for the non-TTY rate limiter (injectable so
        #: tests can drive it; never wall-clock — immune to NTP jumps).
        self.clock = clock
        self.is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_emit: Optional[float] = None
        self._last_width = 0
        self._finished = False

    def update(self, _result=None) -> None:
        if self.quiet or self._finished:
            return
        line = self.aggregator.render_line()
        if self.is_tty:
            pad = " " * max(0, self._last_width - len(line))
            self.stream.write(f"\r{line}{pad}")
            self.stream.flush()
            self._last_width = len(line)
            return
        now = self.clock()
        if self._last_emit is None or now - self._last_emit >= self.interval:
            self._last_emit = now
            print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        """Terminate the rewriting line (or emit the final summary).

        Always flushes one final line regardless of the rate limiter —
        the last update is the one that matters — and is idempotent so
        callers can invoke it from a ``finally`` block."""
        if self.quiet or self._finished:
            return
        self._finished = True
        line = self.aggregator.render_line()
        if self.is_tty:
            pad = " " * max(0, self._last_width - len(line))
            self.stream.write(f"\r{line}{pad}\n")
            self.stream.flush()
        else:
            print(line, file=self.stream, flush=True)


def batch_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro batch",
        description="Run a predefined design-space sweep through the "
                    "batch engine.")
    parser.add_argument(
        "target", choices=sorted(NAMED_SPACES),
        help="which predefined design space to sweep")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes (0 = serial, the default)")
    parser.add_argument(
        "--resume", action="store_true",
        help="keep the existing cache: completed points are skipped, "
             "failed/missing points re-run")
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"result cache directory (default: "
             f"{DEFAULT_CACHE_ROOT}/<target>)")
    parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="random-sample N points instead of the full grid")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="sampling seed (with --sample)")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-time budget")
    parser.add_argument(
        "--incremental", action="store_true",
        help="dirty-set incremental re-analysis: adjacent sweep points "
             "reuse local analyses of resources whose input event "
             "models are unchanged (bit-identical results)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-point progress lines")
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the sampling profiler to the sweep and write a "
             "collapsed-stack flamegraph file into the cache dir")
    parser.add_argument(
        "--profile-hz", type=int, default=None, metavar="HZ",
        help="profiler sampling rate (default 100; implies --profile)")
    args = parser.parse_args(argv)
    if args.profile_hz is not None:
        args.profile = True

    space = NAMED_SPACES[args.target]()
    if args.timeout is not None:
        space.timeout = args.timeout
    if args.incremental:
        space.incremental = True
    points = (space.sample(args.sample, seed=args.seed)
              if args.sample is not None else list(space.grid()))

    cache_dir = args.cache_dir or f"{DEFAULT_CACHE_ROOT}/{args.target}"
    store = ResultStore(cache_dir)
    if not args.resume:
        store.clear()

    runner = BatchRunner(store=store,
                         backend=make_backend(args.workers))

    aggregator = LiveAggregator(total=len(points))
    aggregator.label = space.name
    line = ProgressLine(aggregator, quiet=args.quiet)

    profiler = None
    if args.profile:
        from ..obs.profile import DEFAULT_HZ, SamplingProfiler

        profiler = SamplingProfiler(hz=args.profile_hz or DEFAULT_HZ)

    _obs.configure(enabled=True, reset=True)
    _obs.get_bus().subscribe(aggregator)
    try:
        if profiler is not None:
            profiler.start()
        sweep = space.run(runner, points=points, progress=line.update)
    finally:
        if profiler is not None:
            profiler.stop()
        line.finish()
        _obs.get_bus().unsubscribe(aggregator)
        _obs.configure(enabled=False)

    print(f"\n=== {space.name}: {len(points)} points, "
          f"{runner.backend.name} backend "
          f"({getattr(runner.backend, 'workers', 1)} worker(s)) ===")
    print(sweep.table())
    print(f"\n{sweep.report.summary()}")
    print(f"cache: {cache_dir}")
    if profiler is not None:
        from pathlib import Path

        collapsed_path = Path(cache_dir) / "profile.collapsed"
        collapsed_path.parent.mkdir(parents=True, exist_ok=True)
        text = profiler.collapsed()
        collapsed_path.write_text(text + ("\n" if text else ""),
                                  encoding="utf-8")
        print(f"\nprofile: {profiler.samples} samples @ "
              f"{profiler.hz} Hz -> {collapsed_path}")
        print(profiler.render_hot_table())
    if args.incremental:
        from ..analysis.memo import memo_pool_stats

        stats = memo_pool_stats().get(f"space:{space.name}")
        if stats and stats["tasks_total"]:
            # Pool backends keep their memos worker-side; this summary
            # covers in-process (serial) execution.
            print(f"incremental: {stats['task_reuses']}/"
                  f"{stats['tasks_total']} task analyses reused "
                  f"(rate {stats['reuse_rate']:.0%}, "
                  f"{stats['resource_hits']} whole-resource hits)")

    snapshot = _obs.metrics().snapshot()
    counters = snapshot["counters"]
    hist = snapshot["histograms"].get("batch.job_seconds")
    if hist and hist["count"]:
        print(f"job latency: mean {hist['mean']:.3f}s, "
              f"p90 {hist['p90']:.3f}s, max {hist['max']:.3f}s "
              f"over {hist['count']} executed")
    timeouts = counters.get("batch.jobs.timeout", 0)
    if timeouts:
        print(f"timeouts: {timeouts}")
    if sweep.report.failed:
        print(f"\nFAILED points ({len(sweep.report.failed)}):",
              file=sys.stderr)
        for key in sweep.report.failed:
            result = sweep.report.results[key]
            print(f"  {result.label or key}: {result.error}",
                  file=sys.stderr)
        return 1
    return 0
