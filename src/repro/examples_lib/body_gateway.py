"""A larger case study: two CAN buses bridged by a gateway ECU.

Body electronics (door/climate/light signals, slow) live on CAN_B;
powertrain signals (fast) on CAN_P.  A gateway ECU consumes selected
frames from both buses and re-publishes a fused status frame onto CAN_B;
a driver-display ECU on CAN_B consumes individual signals via HEM
unpacking.

The model exercises, in one system: two SPNP buses, three SPP CPUs,
four pack junctions, three unpack junctions, a task chain crossing both
buses, pending and triggering signals, and end-to-end path latency
through a gateway re-packing stage (nested hierarchy in-engine).

Numbers are synthetic but sized like a real body network (125 kbit/s
body bus = bit time 8 µs, 500 kbit/s powertrain bus = 2 µs; µs units).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.spp import SPPScheduler
from ..can.bus import CanBus
from ..com.frame import Frame, FrameType
from ..com.layer import ComLayer
from ..com.signal import Signal
from ..core.constructors import TransferProperty
from ..eventmodels.standard import periodic
from ..system.model import JunctionKind, System

TRIG = TransferProperty.TRIGGERING
PEND = TransferProperty.PENDING

#: Sources: name -> (period in µs, transfer property, width bits).
SIGNALS: "Dict[str, tuple]" = {
    # powertrain (fast, CAN_P)
    "rpm": (10_000.0, TRIG, 16),
    "speed": (20_000.0, TRIG, 16),
    "coolant": (100_000.0, PEND, 8),
    # body (slow, CAN_B)
    "door_fl": (50_000.0, TRIG, 8),
    "door_fr": (50_000.0, TRIG, 8),
    "climate": (200_000.0, PEND, 16),
}

#: Receiver tasks on the display ECU: task -> (signal, CET µs, prio).
DISPLAY_TASKS = {
    "show_rpm": ("rpm", 800.0, 1),
    "show_speed": ("speed", 1200.0, 2),
    "show_doors": ("door_fl", 1500.0, 3),
    "show_climate": ("climate", 2000.0, 4),
}

GATEWAY_CET = (500.0, 900.0)


def build() -> System:
    """Assemble the full two-bus body/powertrain network."""
    system = System("body-gateway")
    for name, (period, _, _) in SIGNALS.items():
        system.add_source(name, periodic(period, name))

    can_p = CanBus.from_bitrate("CAN_P", 0.5)    # 2 µs/bit
    can_b = CanBus.from_bitrate("CAN_B", 0.125)  # 8 µs/bit
    can_p.install(system)
    can_b.install(system)
    system.add_resource("GATEWAY_CPU", SPPScheduler())
    system.add_resource("DISPLAY_CPU", SPPScheduler())

    # Powertrain COM layer: two frames on CAN_P.
    com_p = ComLayer("powertrain")
    com_p.add_frame(Frame("PT_FAST", FrameType.DIRECT,
                          [Signal("rpm", 16, TRIG),
                           Signal("speed", 16, TRIG)], can_id=1))
    com_p.add_frame(Frame("PT_SLOW", FrameType.PERIODIC,
                          [Signal("coolant", 8, PEND)],
                          period=100_000.0, can_id=2))
    rx_p = com_p.install(system, "CAN_P", can_p.timing,
                         {"rpm": "rpm", "speed": "speed",
                          "coolant": "coolant"})

    # Body COM layer: door/climate frames on CAN_B.
    com_b = ComLayer("body")
    com_b.add_frame(Frame("BODY_DOORS", FrameType.MIXED,
                          [Signal("door_fl", 8, TRIG),
                           Signal("door_fr", 8, TRIG)],
                          period=100_000.0, can_id=11))
    com_b.add_frame(Frame("BODY_CLIMATE", FrameType.PERIODIC,
                          [Signal("climate", 16, PEND)],
                          period=200_000.0, can_id=12))
    com_b.install(system, "CAN_B", can_b.timing,
                  {"door_fl": "door_fl", "door_fr": "door_fr",
                   "climate": "climate"})

    # Gateway ECU: consumes the powertrain signals and re-publishes a
    # fused status frame onto the body bus.
    system.add_task("gw_fuse", "GATEWAY_CPU", GATEWAY_CET,
                    [rx_p["rpm"], rx_p["speed"]], priority=1)
    system.add_junction("gw_pack", JunctionKind.PACK, ["gw_fuse"],
                        properties={"gw_fuse": TRIG})
    status_wire = can_b.timing.transmission_time_max(4)
    system.add_task("GW_STATUS", "CAN_B",
                    (can_b.timing.transmission_time_min(4), status_wire),
                    ["gw_pack"], priority=10)
    system.add_junction("gw_rx", JunctionKind.UNPACK, ["GW_STATUS"])

    # Display ECU on CAN_B: per-signal consumers via unpacking.
    signal_ports = {
        "rpm": "gw_rx.gw_fuse",      # fused status activates rpm view
        "speed": "gw_rx.gw_fuse",
        "door_fl": "BODY_DOORS_rx.door_fl",
        "climate": "BODY_CLIMATE_rx.climate",
    }
    for task, (signal, cet, prio) in DISPLAY_TASKS.items():
        system.add_task(task, "DISPLAY_CPU", (cet, cet),
                        [signal_ports[signal]], priority=prio)
    return system


#: End-to-end paths of interest (for path_latency sweeps).
PATHS = {
    "rpm_to_display": ["rpm", "PT_FAST_pack", "PT_FAST", "gw_fuse",
                       "gw_pack", "GW_STATUS", "show_rpm"],
    "door_to_display": ["door_fl", "BODY_DOORS_pack", "BODY_DOORS",
                        "show_doors"],
}
