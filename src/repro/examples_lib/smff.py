"""Random system-model generation ("system models for free").

Named after the SMFF tool from the paper's research group: generating
many structurally valid random system models is the standard way to
evaluate analysis engines beyond hand-built examples.  The generator
creates task *chains* (sensor → processing hops → sink) mapped onto a
random set of SPP processors connected by SPNP buses, with CETs scaled
to a target utilisation.

Determinism: everything derives from the ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from .._errors import ModelError
from ..analysis.spnp import SPNPScheduler
from ..analysis.spp import SPPScheduler
from ..eventmodels.standard import StandardEventModel
from ..system.model import System


@dataclass
class SmffConfig:
    """Knobs of the random generator."""

    n_cpus: int = 3
    n_buses: int = 1
    n_chains: int = 4
    chain_length: int = 3
    period_range: tuple = (200.0, 2000.0)
    jitter_fraction: float = 0.3
    target_utilization: float = 0.6
    seed: int = 0

    def __post_init__(self):
        if self.n_cpus < 1 or self.n_chains < 1 or self.chain_length < 1:
            raise ModelError("need at least one CPU, chain, and hop")
        if not 0 < self.target_utilization < 1:
            raise ModelError("target utilisation must be in (0, 1)")


def generate(config: SmffConfig) -> System:
    """Create a random, analysable system from the configuration."""
    rng = random.Random(config.seed)
    system = System(f"smff-{config.seed}")

    cpus = [f"cpu{i}" for i in range(config.n_cpus)]
    buses = [f"bus{i}" for i in range(config.n_buses)]
    for cpu in cpus:
        system.add_resource(cpu, SPPScheduler())
    for bus in buses:
        system.add_resource(bus, SPNPScheduler())

    # Chains: source -> alternating cpu/bus hops.
    lo, hi = config.period_range
    demands: "Dict[str, List[tuple]]" = {r: [] for r in cpus + buses}
    chains: List[List[str]] = []
    for c in range(config.n_chains):
        period = rng.uniform(lo, hi)
        jitter = rng.uniform(0.0, config.jitter_fraction * period)
        source = f"src{c}"
        system.add_source(source, StandardEventModel(
            round(period, 3), round(jitter, 3), name=source))
        upstream = source
        chain = [source]
        for hop in range(config.chain_length):
            on_bus = config.n_buses > 0 and hop % 2 == 1
            resource = rng.choice(buses if on_bus else cpus)
            task = f"t{c}_{hop}"
            # placeholder CET 1.0; scaled to target utilisation below
            system.add_task(task, resource, (1.0, 1.0), [upstream],
                            priority=rng.randint(1, 5))
            demands[resource].append((task, 1.0 / period))
            upstream = task
            chain.append(task)
        chains.append(chain)

    # Scale CETs so every resource lands at the target utilisation
    # (proportional shares among its tasks).
    for resource, entries in demands.items():
        if not entries:
            continue
        share = config.target_utilization / len(entries)
        for task, rate in entries:
            cet = round(share / rate, 3)
            cet = max(cet, 1e-3)
            system.tasks[task].c_min = cet
            system.tasks[task].c_max = cet

    system.validate()
    return system


def chain_paths(config: SmffConfig) -> List[List[str]]:
    """Node paths of every chain the configuration generates (matching
    :func:`generate` — used for end-to-end latency sweeps)."""
    paths = []
    for c in range(config.n_chains):
        path = [f"src{c}"]
        path.extend(f"t{c}_{hop}" for hop in range(config.chain_length))
        paths.append(path)
    return paths
