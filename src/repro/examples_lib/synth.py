"""Synthetic system generators for scaling studies and ablations.

Parametric versions of the paper's topology: ``n`` signal sources packed
into ``m`` frames crossing one CAN bus into one receiver CPU.  Used by
the scaling benchmark (analysis cost vs. system size) and by property
tests that need many structurally valid systems.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .._errors import ModelError
from ..analysis.spp import SPPScheduler
from ..can.bus import CanBus
from ..com.frame import Frame, FrameType
from ..com.layer import ComLayer
from ..com.signal import Signal
from ..core.constructors import TransferProperty
from ..eventmodels.standard import StandardEventModel, periodic
from ..system.model import System


def synth_sources(n: int, base_period: float = 200.0,
                  spread: float = 3.0, pending_every: int = 4,
                  seed: int = 1) -> "Dict[str, Tuple[StandardEventModel, TransferProperty]]":
    """``n`` periodic sources with periods spread geometrically over
    ``[base_period, base_period * spread]``; every ``pending_every``-th is
    a pending signal."""
    if n < 1:
        raise ModelError("need at least one source")
    rng = random.Random(seed)
    out = {}
    for i in range(n):
        frac = i / max(1, n - 1)
        period = base_period * (spread ** frac)
        period *= 1.0 + 0.1 * rng.random()  # break exact harmonics
        prop = (TransferProperty.PENDING if pending_every
                and (i + 1) % pending_every == 0
                else TransferProperty.TRIGGERING)
        name = f"S{i + 1}"
        out[name] = (periodic(round(period, 3), name), prop)
    return out


def synth_com_layer(sources, frames: int,
                    timer_period: float = 1000.0) -> ComLayer:
    """Distribute the sources round-robin over ``frames`` mixed frames."""
    if frames < 1:
        raise ModelError("need at least one frame")
    names = list(sources)
    layer = ComLayer("synth")
    for f in range(frames):
        packed = names[f::frames]
        if not packed:
            continue
        signals = [Signal(n, 8, sources[n][1]) for n in packed]
        # 8-bit signals, at most 8 per frame payload.
        if len(signals) > 8:
            raise ModelError(
                f"frame would carry {len(signals)} signals; max 8 "
                f"one-byte signals fit a CAN frame")
        layer.add_frame(Frame(name=f"F{f + 1}", frame_type=FrameType.MIXED,
                              signals=signals, period=timer_period,
                              can_id=f + 1))
    return layer


def synth_system(n_signals: int, n_frames: int,
                 variant: str = "hem",
                 bit_time: float = 0.5,
                 cet: float = 15.0,
                 timer_period: float = 2000.0,
                 base_period: float = 800.0,
                 seed: int = 1) -> System:
    """A full synthetic gateway system ready for analysis.

    Default periods/CETs are chosen so that even the *flat* variant
    (every receiver task activated by its whole frame stream) stays
    below CPU and bus capacity up to a dozen signals — the flat load is
    roughly ``n_signals * cet * frame_rate``, far above the HEM load.
    """
    if variant not in ("hem", "flat"):
        raise ModelError("variant must be 'hem' or 'flat'")
    sources = synth_sources(n_signals, base_period=base_period, seed=seed)
    layer = synth_com_layer(sources, n_frames, timer_period=timer_period)

    system = System(f"synth-{n_signals}x{n_frames}-{variant}")
    for name, (model, _) in sources.items():
        system.add_source(name, model)
    bus = CanBus.from_bitrate("CAN", 1.0 / bit_time)
    bus.install(system)
    system.add_resource("CPU", SPPScheduler())

    ports = layer.install(system, "CAN", bus.timing,
                          signal_sources={s: s for s in sources})
    for i, signal in enumerate(sources):
        activation = (ports[signal] if variant == "hem"
                      else layer.frame_of_signal(signal).name)
        system.add_task(f"T{i + 1}", "CPU", (cet, cet), [activation],
                        priority=i + 1)
    return system
