"""Synthetic system generators for scaling studies and ablations.

Two families:

* Parametric versions of the paper's topology: ``n`` signal sources
  packed into ``m`` frames crossing one CAN bus into one receiver CPU
  (:func:`synth_system`).  Used by the scaling benchmark (analysis cost
  vs. system size) and by property tests that need many structurally
  valid systems.  ``jitter_frac``/``nesting`` widen the sampled space:
  jittery sources and hierarchically pre-packed source streams (HEMs
  nested ``nesting`` levels deep feed the COM layer's own pack).
* Seeded randomized *task graphs* (:func:`synth_task_graph`): DAGs of
  jitter/burst sources feeding task chains over several resources with
  randomized policies, unique per-resource priorities, and utilization
  budgeting.  Unlike the gateway topology these contain no PACK/UNPACK
  junctions, so they are accepted by the generic discrete-event
  simulator — the sample source the ``repro.soak`` differential
  analysis-vs-simulation oracle grinds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .._errors import ModelError
from ..analysis.edf import EDFScheduler
from ..analysis.round_robin import RoundRobinScheduler
from ..analysis.spnp import SPNPScheduler
from ..analysis.spp import SPPScheduler
from ..analysis.tdma import TDMAScheduler
from ..can.bus import CanBus
from ..com.frame import Frame, FrameType
from ..com.layer import ComLayer
from ..com.signal import Signal
from ..core.constructors import TransferProperty, hsc_pack
from ..eventmodels.base import EventModel
from ..eventmodels.standard import (
    StandardEventModel,
    periodic,
    periodic_with_jitter,
)
from ..system.model import System


def synth_sources(n: int, base_period: float = 200.0,
                  spread: float = 3.0, pending_every: int = 4,
                  seed: int = 1, jitter_frac: float = 0.0
                  ) -> "Dict[str, Tuple[StandardEventModel, TransferProperty]]":
    """``n`` periodic sources with periods spread geometrically over
    ``[base_period, base_period * spread]``; every ``pending_every``-th is
    a pending signal.  ``jitter_frac > 0`` gives every source a release
    jitter drawn uniformly from ``[0, jitter_frac * period]``."""
    if n < 1:
        raise ModelError("need at least one source")
    if jitter_frac < 0:
        raise ModelError("jitter_frac must be >= 0")
    rng = random.Random(seed)
    out = {}
    for i in range(n):
        frac = i / max(1, n - 1)
        period = base_period * (spread ** frac)
        period *= 1.0 + 0.1 * rng.random()  # break exact harmonics
        period = round(period, 3)
        prop = (TransferProperty.PENDING if pending_every
                and (i + 1) % pending_every == 0
                else TransferProperty.TRIGGERING)
        name = f"S{i + 1}"
        if jitter_frac > 0:
            jitter = round(rng.uniform(0.0, jitter_frac * period), 3)
            out[name] = (periodic_with_jitter(period, jitter, name), prop)
        else:
            out[name] = (periodic(period, name), prop)
    return out


def synth_nested_model(depth: int, period: float = 100.0,
                       timer_period: float = 500.0,
                       name: str = "nest") -> EventModel:
    """A hierarchical event model nested ``depth`` pack levels deep.

    Level 0 is a plain periodic stream; each further level packs the
    previous hierarchy as the triggering signal of a mixed frame (plus
    one pending payload signal and a timer).  Feeding these to
    :func:`synth_system` sources exercises HEM-inside-HEM propagation:
    the COM layer's own pack adds one more level on top.
    """
    if depth < 0:
        raise ModelError("nesting depth must be >= 0")
    model: EventModel = periodic(period, f"{name}.sig")
    for level in range(depth):
        model = hsc_pack(
            {f"{name}.trig{level}": (model, TransferProperty.TRIGGERING),
             f"{name}.pend{level}": (
                 periodic(period * 2.0, f"{name}.pend{level}.src"),
                 TransferProperty.PENDING)},
            timer=periodic(timer_period * (level + 1),
                           f"{name}.timer{level}"),
            name=f"{name}.F{level}")
    return model


def synth_com_layer(sources, frames: int,
                    timer_period: float = 1000.0) -> ComLayer:
    """Distribute the sources round-robin over ``frames`` mixed frames."""
    if frames < 1:
        raise ModelError("need at least one frame")
    names = list(sources)
    layer = ComLayer("synth")
    for f in range(frames):
        packed = names[f::frames]
        if not packed:
            continue
        signals = [Signal(n, 8, sources[n][1]) for n in packed]
        # 8-bit signals, at most 8 per frame payload.
        if len(signals) > 8:
            raise ModelError(
                f"frame would carry {len(signals)} signals; max 8 "
                f"one-byte signals fit a CAN frame")
        layer.add_frame(Frame(name=f"F{f + 1}", frame_type=FrameType.MIXED,
                              signals=signals, period=timer_period,
                              can_id=f + 1))
    return layer


def synth_system(n_signals: int, n_frames: int,
                 variant: str = "hem",
                 bit_time: float = 0.5,
                 cet: float = 15.0,
                 timer_period: float = 2000.0,
                 base_period: float = 800.0,
                 seed: int = 1,
                 jitter_frac: float = 0.0,
                 nesting: int = 0) -> System:
    """A full synthetic gateway system ready for analysis.

    Default periods/CETs are chosen so that even the *flat* variant
    (every receiver task activated by its whole frame stream) stays
    below CPU and bus capacity up to a dozen signals — the flat load is
    roughly ``n_signals * cet * frame_rate``, far above the HEM load.

    ``jitter_frac`` jitters the sources (see :func:`synth_sources`);
    ``nesting > 0`` replaces every source stream with a hierarchical
    model packed ``nesting`` levels deep (:func:`synth_nested_model`),
    so the COM layer packs already-hierarchical streams.
    """
    if variant not in ("hem", "flat"):
        raise ModelError("variant must be 'hem' or 'flat'")
    if nesting < 0:
        raise ModelError("nesting must be >= 0")
    sources = synth_sources(n_signals, base_period=base_period, seed=seed,
                            jitter_frac=jitter_frac)
    layer = synth_com_layer(sources, n_frames, timer_period=timer_period)

    system = System(f"synth-{n_signals}x{n_frames}-{variant}")
    for name, (model, _) in sources.items():
        if nesting:
            model = synth_nested_model(
                nesting, period=model.period,
                timer_period=timer_period, name=f"{name}.nest")
        system.add_source(name, model)
    bus = CanBus.from_bitrate("CAN", 1.0 / bit_time)
    bus.install(system)
    system.add_resource("CPU", SPPScheduler())

    ports = layer.install(system, "CAN", bus.timing,
                          signal_sources={s: s for s in sources})
    for i, signal in enumerate(sources):
        activation = (ports[signal] if variant == "hem"
                      else layer.frame_of_signal(signal).name)
        system.add_task(f"T{i + 1}", "CPU", (cet, cet), [activation],
                        priority=i + 1)
    return system


# ----------------------------------------------------------------------
# randomized task graphs (simulatable: no PACK/UNPACK junctions)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpace:
    """Parameter space :func:`synth_task_graph` samples from.

    Every field bounds one aspect of the drawn topology; the defaults
    describe the ``repro.soak`` smoke profile — small DAGs over
    preemptive/non-preemptive static-priority resources whose load is
    budgeted well below capacity, so strict analysis converges for
    every seed.
    """

    max_resources: int = 3
    max_sources: int = 4
    max_chain: int = 3
    #: Scheduling policies resources are drawn from.  Supported:
    #: ``spp``, ``spnp``, ``edf``, ``round_robin``, ``tdma``.
    policies: Tuple[str, ...] = ("spp", "spnp")
    period_lo: float = 50.0
    period_hi: float = 2000.0
    #: Probability that a source has release jitter at all, and the
    #: largest jitter as a fraction of the period.  Fractions above 1
    #: produce bursts (several events released back to back).
    p_jitter: float = 0.6
    jitter_frac_hi: float = 1.5
    #: Minimum distance of bursty sources as a fraction of the period.
    burst_d_min_frac: float = 0.05
    #: Probability of adding an OR-join sink over two chain tails.
    p_or_join: float = 0.3
    #: Per-resource utilization budget drawn from this interval.
    util_lo: float = 0.1
    util_hi: float = 0.5
    #: BCET as a fraction of WCET, drawn from ``[c_min_frac_lo, 1]``.
    c_min_frac_lo: float = 0.3

    def to_dict(self) -> "Dict[str, object]":
        return {
            "max_resources": self.max_resources,
            "max_sources": self.max_sources,
            "max_chain": self.max_chain,
            "policies": list(self.policies),
            "period_lo": self.period_lo,
            "period_hi": self.period_hi,
            "p_jitter": self.p_jitter,
            "jitter_frac_hi": self.jitter_frac_hi,
            "burst_d_min_frac": self.burst_d_min_frac,
            "p_or_join": self.p_or_join,
            "util_lo": self.util_lo,
            "util_hi": self.util_hi,
            "c_min_frac_lo": self.c_min_frac_lo,
        }

    @classmethod
    def from_dict(cls, data: "Dict[str, object]") -> "GraphSpace":
        kwargs = dict(data)
        if "policies" in kwargs:
            kwargs["policies"] = tuple(kwargs["policies"])
        return cls(**kwargs)


def _draw_source_model(rng: random.Random, space: GraphSpace,
                       name: str) -> StandardEventModel:
    """One seeded source model: periodic, jittered, or bursty."""
    log_lo, log_hi = (space.period_lo, space.period_hi)
    period = round(log_lo * (log_hi / log_lo) ** rng.random(), 3)
    if rng.random() >= space.p_jitter:
        return periodic(period, name)
    jitter = round(rng.uniform(0.0, space.jitter_frac_hi) * period, 3)
    if jitter <= period:
        return periodic_with_jitter(period, jitter, name)
    # Burst: more than one event can be released back to back; keep a
    # small positive minimum distance so busy windows stay bounded.
    d_min = round(max(space.burst_d_min_frac * period, 1e-3), 3)
    return StandardEventModel(period, jitter, d_min, name=name)


def synth_task_graph(seed: int,
                     space: Optional[GraphSpace] = None) -> System:
    """A seeded random task-graph system (DAG, no junction nodes).

    Construction: draw resources (policy each), draw sources, feed each
    source into a chain of tasks on random resources, optionally add an
    OR-join sink over two chain tails.  Priorities are unique per
    resource; WCETs are budgeted so each resource's utilization lands
    in ``[util_lo, util_hi]``.  The same ``(seed, space)`` always
    produces the same system, bit for bit.
    """
    space = space or GraphSpace()
    rng = random.Random(f"synth-task-graph:{seed}")

    n_resources = rng.randint(1, max(1, space.max_resources))
    resources = []
    for r in range(n_resources):
        policy = rng.choice(list(space.policies))
        resources.append((f"R{r + 1}", policy))

    n_sources = rng.randint(1, max(1, space.max_sources))
    sources = {}
    for s in range(n_sources):
        name = f"S{s + 1}"
        sources[name] = _draw_source_model(rng, space, name)

    # Plan tasks first; priorities and budgets are assigned once the
    # whole topology is known.
    plan = []  # {name, resource, inputs, activation, rate}
    tails = []
    for s, (src, model) in enumerate(sources.items()):
        rate = 1.0 / model.period
        upstream = src
        for link in range(rng.randint(1, max(1, space.max_chain))):
            resource = resources[rng.randrange(len(resources))][0]
            name = f"T{s + 1}_{link + 1}"
            plan.append({"name": name, "resource": resource,
                         "inputs": [upstream], "activation": "or",
                         "rate": rate})
            upstream = name
        tails.append((upstream, rate))

    if len(tails) >= 2 and rng.random() < space.p_or_join:
        (a, rate_a), (b, rate_b) = rng.sample(tails, 2)
        resource = resources[rng.randrange(len(resources))][0]
        plan.append({"name": "TJ", "resource": resource,
                     "inputs": [a, b], "activation": "or",
                     "rate": rate_a + rate_b})

    system = System(f"graph-{seed}")
    for name, model in sources.items():
        system.add_source(name, model)
    policy_of = {}
    for name, policy in resources:
        policy_of[name] = policy
        if not any(t["resource"] == name for t in plan):
            continue  # resources without tasks are not added
        if policy == "spp":
            system.add_resource(name, SPPScheduler())
        elif policy == "spnp":
            system.add_resource(name, SPNPScheduler())
        elif policy == "edf":
            system.add_resource(name, EDFScheduler())
        elif policy == "round_robin":
            system.add_resource(name, RoundRobinScheduler())
        elif policy == "tdma":
            system.add_resource(name, TDMAScheduler())
        else:
            raise ModelError(f"unknown graph policy {policy!r}")

    # Per-resource utilization budgeting and unique priorities.
    by_resource: "Dict[str, List[dict]]" = {}
    for entry in plan:
        by_resource.setdefault(entry["resource"], []).append(entry)
    for resource, entries in by_resource.items():
        util = rng.uniform(space.util_lo, space.util_hi)
        weights = [rng.uniform(0.5, 1.5) for _ in entries]
        total = sum(weights)
        order = list(range(len(entries)))
        rng.shuffle(order)
        for rank, (entry, weight) in enumerate(zip(entries, weights)):
            share = util * weight / total
            c_max = max(round(share / entry["rate"], 6), 1e-3)
            c_min = round(c_max * rng.uniform(space.c_min_frac_lo, 1.0), 6)
            entry["c_max"] = c_max
            entry["c_min"] = min(c_min, c_max)
            entry["priority"] = order[rank] + 1
            policy = policy_of[resource]
            entry["slot"] = (round(c_max * rng.uniform(1.0, 1.5), 6)
                             if policy in ("tdma", "round_robin") else None)
            entry["deadline"] = (round(rng.uniform(1.0, 4.0)
                                       / entry["rate"], 6)
                                 if policy == "edf" else None)

    for entry in plan:
        system.add_task(entry["name"], entry["resource"],
                        (entry["c_min"], entry["c_max"]), entry["inputs"],
                        priority=entry["priority"], slot=entry["slot"],
                        deadline=entry["deadline"],
                        activation=entry["activation"])
    system.validate()
    return system
