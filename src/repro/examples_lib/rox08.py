"""The paper's evaluation system (section 6, Fig. 2, Tables 1–3).

Four sources on a sender ECU write signals into the COM layer; the COM
layer packs them into two CAN frames; a receiver CPU runs three SPP tasks
activated by "their" signals:

    S1 (P=250,  triggering) ──┐
    S2 (P=450,  triggering) ──┤  F1 (4 B payload, high priority, mixed,
    S3 (P=1000, pending)    ──┘      timer 1000)          ──► CAN ──► CPU1
    S4 (P=400,  triggering) ─────F2 (2 B payload, low priority, direct)

    CPU1 (SPP):  T1 (CET 24, High) ◄─ S1
                 T2 (CET 32, Med)  ◄─ S2
                 T3 (CET 40, Low)  ◄─ S3

Parameter provenance: periods, CETs, payloads, frame priorities, and task
priorities are the paper's Tables 1–3.  Values the available scan garbles
(S3's period, the frame/timer details, the bus bit time) are reconstructed
as documented in EXPERIMENTS.md; the reproduction target is the *shape* of
Table 3 and Figure 4, not their absolute numbers.

Two analysis variants share the same physical system:

* ``variant="flat"`` — receiver tasks attach to the frame's output stream
  directly: every frame arrival must be assumed to activate every task
  (the standard-event-model baseline of Table 3).
* ``variant="hem"``  — receiver tasks attach to the unpacked per-signal
  streams of the hierarchical event model (the paper's contribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .._errors import ModelError
from ..analysis.spp import SPPScheduler
from ..can.bus import CanBus
from ..com.frame import Frame, FrameType
from ..com.layer import ComLayer
from ..com.signal import Signal
from ..core.constructors import TransferProperty
from ..eventmodels.standard import StandardEventModel, periodic
from ..system.model import System

# ----------------------------------------------------------------------
# Paper parameters (Tables 1-3) and documented reconstructions
# ----------------------------------------------------------------------

#: Table 1 — sources: name -> (period, transfer property).
SOURCES: Dict[str, Tuple[float, TransferProperty]] = {
    "S1": (250.0, TransferProperty.TRIGGERING),
    "S2": (450.0, TransferProperty.TRIGGERING),
    "S3": (1000.0, TransferProperty.PENDING),   # period reconstructed
    "S4": (400.0, TransferProperty.TRIGGERING),
}

#: Table 2 — frames: payloads and priorities are the paper's; the frame
#: type and timer period are reconstructed (F1 must have a timer or S3's
#: pending values could starve).
F1_PAYLOAD = 4
F2_PAYLOAD = 2
F1_CAN_ID = 1    # "High"
F2_CAN_ID = 2    # "Low"
F1_PERIOD = 1000.0

#: Table 3 — CPU tasks: name -> (CET, priority); smaller = higher prio.
CPU_TASKS: Dict[str, Tuple[float, int]] = {
    "T1": (24.0, 1),
    "T2": (32.0, 2),
    "T3": (40.0, 3),
}

#: Which signal activates which receiver task.
TASK_SIGNAL: Dict[str, str] = {"T1": "S1", "T2": "S2", "T3": "S3"}

#: Reconstructed CAN bit time (time units per bit): 0.5 puts the frame
#: transmission times (F1: 47.5, F2: 37.5) in the same range as the task
#: CETs, matching the paper's Fig. 4 time axis.
BIT_TIME = 0.5


def build_source_models() -> Dict[str, StandardEventModel]:
    """Event models of the four sources (Table 1)."""
    return {name: periodic(period, name)
            for name, (period, _) in SOURCES.items()}


def build_com_layer() -> ComLayer:
    """Frames F1 and F2 with their packed signals (Table 2)."""
    com = ComLayer("gateway")
    com.add_frame(Frame(
        name="F1",
        frame_type=FrameType.MIXED,
        signals=[
            Signal("S1", 8, SOURCES["S1"][1]),
            Signal("S2", 8, SOURCES["S2"][1]),
            Signal("S3", 16, SOURCES["S3"][1]),
        ],
        period=F1_PERIOD,
        can_id=F1_CAN_ID,
        payload_bytes=F1_PAYLOAD,
    ))
    com.add_frame(Frame(
        name="F2",
        frame_type=FrameType.DIRECT,
        signals=[Signal("S4", 16, SOURCES["S4"][1])],
        can_id=F2_CAN_ID,
        payload_bytes=F2_PAYLOAD,
    ))
    return com


def build_system(variant: str = "hem") -> System:
    """The full analysable system in one of the two variants."""
    if variant not in ("hem", "flat"):
        raise ModelError(f"variant must be 'hem' or 'flat', got {variant!r}")

    system = System(f"rox08-{variant}")
    for name, model in build_source_models().items():
        system.add_source(name, model)

    bus = CanBus.from_bitrate("CAN", 1.0 / BIT_TIME)
    bus.install(system)
    system.add_resource("CPU1", SPPScheduler())

    com = build_com_layer()
    receiver_ports = com.install(system, "CAN", bus.timing,
                                 signal_sources={s: s for s in SOURCES})

    for task_name, (cet, priority) in CPU_TASKS.items():
        signal = TASK_SIGNAL[task_name]
        if variant == "hem":
            activation = receiver_ports[signal]
        else:
            # Flat baseline: the task sees the whole frame stream.
            activation = com.frame_of_signal(signal).name
        system.add_task(task_name, "CPU1", (cet, cet), [activation],
                        priority=priority)
    return system


@dataclass
class PaperComparison:
    """Side-by-side Table 3 data: WCRT flat vs WCRT with HEMs."""

    wcrt_flat: Dict[str, float]
    wcrt_hem: Dict[str, float]

    def reduction_percent(self, task: str) -> float:
        flat = self.wcrt_flat[task]
        return 100.0 * (flat - self.wcrt_hem[task]) / flat

    def rows(self):
        """(task, flat, hem, reduction %) rows in task order."""
        return [(t, self.wcrt_flat[t], self.wcrt_hem[t],
                 self.reduction_percent(t)) for t in sorted(self.wcrt_flat)]


def analyze_both_variants(max_iterations: int = 64) -> PaperComparison:
    """Run the global analysis for both variants and collect Table 3."""
    from ..system.propagation import analyze_system

    flat = analyze_system(build_system("flat"),
                          max_iterations=max_iterations)
    hem = analyze_system(build_system("hem"), max_iterations=max_iterations)
    return PaperComparison(
        wcrt_flat={t: flat.wcrt(t) for t in CPU_TASKS},
        wcrt_hem={t: hem.wcrt(t) for t in CPU_TASKS},
    )
