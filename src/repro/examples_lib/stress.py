"""Deliberately pathological example systems for the resilience suite.

Two builders that make the global fixed-point engine fail in the two
interesting ways:

* :func:`build_overloaded` — a three-CPU pipeline whose middle stage is
  overloaded (utilisation > 1).  Strict analysis raises
  :class:`~repro._errors.NotSchedulableError`; degraded analysis
  quarantines the hot CPU, widens its output to the sporadic envelope
  ``sporadic(c_min)``, and still bounds the healthy neighbours.

* :func:`build_oscillating` — a two-CPU priority-inversion feedback loop
  whose response-time jitter grows a little every global iteration
  without ever closing a busy window: the iteration never converges, yet
  no local analysis fails.  Strict analysis exhausts the iteration
  budget (or is aborted early by the
  :class:`~repro.resilience.guards.DivergenceGuard`); degraded analysis
  freezes the diverging resource and converges for the rest.

The loop in :func:`build_oscillating` works through the *scheduler*, not
the stream graph (which stays acyclic): T_a (low priority) feeds T_b on
the second CPU, T_b feeds T_c (high priority) back onto the first CPU.
T_a's response jitter becomes activation jitter of T_c, whose bursts then
lengthen T_a's busy window — a feedback gain slightly above 1, tuned so
the residual grows monotonically but slowly (geometric escape would hit
the busy-window blowup guard instead of the iteration limit).
"""

from __future__ import annotations

from ..analysis.spp import SPPScheduler
from ..eventmodels.standard import periodic
from ..system.model import System

#: Tasks of the overloaded example whose resources stay healthy.
OVERLOADED_HEALTHY_TASKS = ("T_in", "T_down")

#: The overloaded resource of :func:`build_overloaded`.
OVERLOADED_RESOURCE = "CPU_HOT"

#: The resource :func:`build_oscillating` drives into divergence.
OSCILLATING_RESOURCE = "CPU1"


def build_overloaded() -> System:
    """Pipeline with an overloaded middle stage.

    ``S_in -> T_in (CPU_IN) -> T_hot (CPU_HOT, overloaded) ->
    T_down (CPU_DOWN)`` plus an independent ``S_side -> T_side`` on
    CPU_IN.  CPU_HOT's utilisation is 1.2, so its local analysis raises;
    everything else is lightly loaded.  ``T_hot``'s ``c_min`` of 110
    makes the degraded widening ``sporadic(110)`` — slower than the
    true input rate of 1/100, hence conservative for ``T_down``.
    """
    system = System("stress-overloaded")
    system.add_source("S_in", periodic(100.0, "S_in"))
    system.add_source("S_side", periodic(400.0, "S_side"))

    system.add_resource("CPU_IN", SPPScheduler())
    system.add_resource(OVERLOADED_RESOURCE, SPPScheduler())
    system.add_resource("CPU_DOWN", SPPScheduler())

    system.add_task("T_in", "CPU_IN", (8.0, 10.0), ["S_in"], priority=1)
    system.add_task("T_side", "CPU_IN", (20.0, 25.0), ["S_side"],
                    priority=2)
    # 120 / 100 = 1.2 long-run utilisation: overloaded.
    system.add_task("T_hot", OVERLOADED_RESOURCE, (110.0, 120.0),
                    ["T_in"], priority=1)
    system.add_task("T_down", "CPU_DOWN", (15.0, 20.0), ["T_hot"],
                    priority=1)
    return system


def build_oscillating(gain_c: float = 46.0,
                      period: float = 100.0) -> System:
    """Two-CPU jitter feedback loop with gain slightly above one.

    ``S1 -> T_a (CPU1, low prio) -> T_b (CPU2) -> T_c (CPU1, high
    prio)``.  Utilisation stays well below one on both CPUs — every
    *local* analysis succeeds every iteration — but each global
    iteration feeds T_a's grown response jitter around the loop back
    into T_c's activation, lengthening T_a's next busy window.  The
    response residual therefore grows monotonically and the global
    iteration never converges.

    ``gain_c`` is T_c's execution time; the default 46 (against
    ``period`` 100) puts the loop gain just above 1.  Values of 45 and
    below never push T_a's busy window plus T_c's jitter across the
    first η⁺ threshold, so the loop stays contractive and the system
    converges (``gain_c=30`` is the control case in the tests); values
    of 48 and up grow so fast that the long-run load estimate of the
    jittered stream tips over 1.0 and the run escapes into
    :class:`~repro._errors.NotSchedulableError` instead of exercising
    the iteration limit.
    """
    system = System("stress-oscillating")
    system.add_source("S1", periodic(period, "S1"))

    system.add_resource(OSCILLATING_RESOURCE, SPPScheduler())
    system.add_resource("CPU2", SPPScheduler())

    system.add_task("T_a", OSCILLATING_RESOURCE, (10.0, 10.0), ["S1"],
                    priority=2)
    system.add_task("T_b", "CPU2", (30.0, 30.0), ["T_a"], priority=1)
    system.add_task("T_c", OSCILLATING_RESOURCE, (gain_c, gain_c),
                    ["T_b"], priority=1)
    return system
